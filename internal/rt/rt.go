// Package rt is the real-time, multithreaded implementation of the AdaVP
// pipeline — the concurrency structure of the paper's §IV-B and §V built
// with actual goroutines rather than the virtual clock of internal/sim:
//
//   - The main thread feeds camera frames into the shared frame buffer at
//     the capture rate and assembles the displayed outputs.
//   - The object detector thread repeatedly fetches the newest frame from
//     the buffer, runs the DNN (its latency is emulated by sleeping the
//     calibrated duration, scaled by Config.TimeScale), and hands the
//     results to the tracker.
//   - The object tracker thread tracks the frames accumulated between two
//     detections, honoring the tracking-frame selection scheme, and cancels
//     its remaining work after finishing the current task once the detector
//     has fetched a new frame (§IV-B's synchronization rule).
//
// Shared data (frame buffer, detection results, display outputs) is guarded
// by mutexes; cross-thread signalling uses a condition variable for frame
// arrival and a channel for detection hand-off, mirroring the paper's
// "lock + event" design. The package is exercised under the race detector.
//
// The pipeline is supervised (internal/guard): every Detect call runs in a
// goroutine with panic recovery and a watchdog deadline derived from the
// calibrated per-setting latency. On a timeout, panic or empty burst the
// run enters a degraded health state — the previous calibration stays on
// screen, the cycle retries with capped exponential backoff, and repeated
// faults escalate to a smaller/faster model setting — then recovers to
// normal after enough consecutive clean cycles. Deterministic fault
// campaigns are injected with Config.Fault (internal/fault).
package rt

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"adavp/internal/adapt"
	"adavp/internal/core"
	"adavp/internal/detect"
	"adavp/internal/fault"
	"adavp/internal/guard"
	"adavp/internal/metrics"
	"adavp/internal/obs"
	"adavp/internal/par"
	"adavp/internal/rng"
	"adavp/internal/trace"
	"adavp/internal/track"
	"adavp/internal/video"
)

// Config parameterizes a live run.
type Config struct {
	// Setting is the fixed (or initial, when Adaptation is set) DNN setting.
	// Default: Setting512.
	Setting core.Setting
	// Adaptation enables AdaVP's runtime model switching; nil runs fixed
	// MPDT.
	Adaptation *adapt.Model
	// Detector overrides the default calibrated detector.
	Detector detect.Detector
	// NewTracker overrides the default tracker factory.
	NewTracker func(seed uint64) track.Tracker
	// TimeScale scales all emulated latencies and the camera interval.
	// 1.0 is real time; 0.02 runs fifty times faster. Default: 0.02.
	TimeScale float64
	// Seed derives detector noise and latency jitter.
	Seed uint64
	// PixelMode renders frames for pixel-based detectors/trackers.
	PixelMode bool
	// Fault, when set, wraps the detector and tracker with the profile's
	// deterministic fault schedule (internal/fault, Live mode).
	Fault *fault.Profile
	// Guard tunes the supervision layer; the zero value takes the
	// documented defaults.
	Guard guard.Config
	// Workers sets the pixel-kernel worker pool size for this process
	// (0 keeps the current setting, default NumCPU). Worker count never
	// changes results, only wall time (see internal/par).
	Workers int
	// Obs, when set, receives live telemetry under the shared schema:
	// per-stage wall-clock latency histograms (detect labeled with the model
	// setting and the supervisor's health at observation time), frame/cycle/
	// switch counters, the velocity gauge, guard health and events, and
	// injected-fault counts. It is also handed to the supervisor unless
	// Guard.Obs is already set. Nil disables publishing.
	Obs *obs.Registry
	// StreamID, when non-empty, labels every published series with
	// stream=<id> and is forwarded to the detector-slot provider and the
	// guard supervisor, so N pipelines sharing one registry and one slot
	// pool stay distinguishable. Set by serve.Run.
	StreamID string
	// Slots is the detector-slot provider the detector thread acquires a
	// slot from before every inference (serve.Pool in multi-stream runs).
	// Nil runs against a dedicated always-free slot — the single-stream
	// special case (N=1, K=1).
	Slots DetectorSlots
	// PipelineDepth, when >1 in pixel mode, runs the staged frame-prefetch
	// ahead of the detector/tracker threads: up to PipelineDepth upcoming
	// frames are rendered (raster only — a pure function of the frame index)
	// while the stream is blocked elsewhere, most importantly inside
	// Slots.Acquire. A stream queueing for a shared detector slot keeps its
	// prefetch stage running, so another stream's detect sleep overlaps with
	// this stream's renders. Behavior-neutral by construction: consumers that
	// miss the cache render inline, and the prefetcher never touches the slot
	// pool, so grant order is exactly as without it. Depth ≤ 1 disables.
	PipelineDepth int
}

// DetectorSlots grants shared detector slots to competing streams. The live
// implementation is serve.Pool; the interface is declared here (with
// basic-typed arguments) so the serving layer can depend on rt and not the
// other way around.
type DetectorSlots interface {
	// Acquire blocks until a detector slot is granted or ctx is cancelled.
	// stream identifies the caller; setting is the model setting it holds at
	// request time — the batch compatibility key a batching pool fuses
	// grants on (the caller's post-grant adaptation may still switch);
	// lastCalib is the pipeline time its most recent calibration completed
	// (zero before the first) — the oldest-calibration-first fairness key.
	// The returned release must be called exactly once, when the inference
	// is done. A non-ctx error is backpressure: the wait queue is full, and
	// the caller skips this detection — it keeps tracking against its
	// previous calibration and retries on a later frame, so staleness grows
	// instead of memory.
	Acquire(ctx context.Context, stream string, setting core.Setting, lastCalib time.Duration) (release func(), err error)
}

// exclusiveSlots is the nil-Slots default: a dedicated, always-free detector
// slot with zero acquisition cost.
type exclusiveSlots struct{}

func (exclusiveSlots) Acquire(ctx context.Context, _ string, _ core.Setting, _ time.Duration) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return func() {}, nil
}

func (c Config) withDefaults() Config {
	if c.Setting == core.SettingInvalid {
		c.Setting = core.Setting512
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 0.02
	}
	return c
}

// Result summarizes a live run.
type Result struct {
	Outputs  []core.FrameOutput
	FrameF1  []float64
	Accuracy float64
	MeanF1   float64
	// Cycles counts completed detection cycles; Switches counts setting
	// changes (AdaVP only).
	Cycles   int
	Switches int
	// Deferred counts detections deferred because the shared slot pool
	// refused the request (bounded-queue backpressure). A pending detection
	// refused across consecutive attempts counts once — frames, not retries.
	// Always zero without Config.Slots.
	Deferred int
	// MaxCalibAge is the longest wall-clock gap between consecutive
	// calibration completions (the first measured from run start) — the
	// live counterpart of sim.StreamOutcome.MaxCalibAge, checked against
	// serve.FairnessBound by the chaos soak.
	MaxCalibAge time.Duration
	// MaxSlotOccupancy is the longest this stream held a detector slot
	// (supervision, retries and emulated inference included) — the
	// maxOccupancy term of the fairness bound.
	MaxSlotOccupancy time.Duration
	// Health is the supervisor's final state; Faults its fault/recovery
	// counters (all zero for a clean run).
	Health guard.Health
	Faults guard.Stats
	// Events interleaves injected faults and supervision actions, in order.
	Events []trace.FaultEvent
	// Injected counts the faults the injector actually fired, keyed
	// "component:kind". Nil without a fault profile.
	Injected map[string]int
	// Partial marks a run cut short by context cancellation: Outputs and
	// the metrics cover the frames that completed before the cut.
	Partial bool
	// PrefetchedWhileWaiting counts frames whose prefetch completed while
	// this stream was blocked in slot acquisition — the overlap the serve
	// pipeline buys. Always zero when Config.PipelineDepth ≤ 1.
	PrefetchedWhileWaiting int
}

// frameBuffer is the shared camera buffer: the camera thread publishes the
// newest captured frame index; the detector blocks until a frame newer than
// its last fetch arrives.
type frameBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	latest int
	closed bool
}

func newFrameBuffer() *frameBuffer {
	b := &frameBuffer{latest: -1}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// push publishes a newly captured frame.
func (b *frameBuffer) push(i int) {
	b.mu.Lock()
	if i > b.latest {
		b.latest = i
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// close marks the end of the stream.
func (b *frameBuffer) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// waitNewer blocks until a frame newer than `than` is available, returning
// its index. ok is false once the stream has ended with nothing newer.
func (b *frameBuffer) waitNewer(than int) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.latest <= than && !b.closed {
		b.cond.Wait()
	}
	if b.latest > than {
		return b.latest, true
	}
	return 0, false
}

// framePrefetcher is the serve-path prefetch stage: a single goroutine that
// follows the camera cursor and renders the next PipelineDepth frames ahead
// of it into a bounded cache, so the detector and tracker threads fetch warm
// rasters instead of rendering on their critical path. The rendered frame is
// a pure function of its index, so a cache hit and an inline render are
// interchangeable — the stage is behavior-neutral and needs no draining on
// shutdown beyond its goroutine exiting with the camera.
//
// Its reason to exist is the blocked-stream overlap: while the detector loop
// is parked inside DetectorSlots.Acquire waiting for a shared slot, the
// prefetcher keeps rendering — another stream's emulated detect sleep is this
// stream's pyramid-and-raster budget. The waiting flag brackets exactly that
// window, and the accounting (frames completed inside it, cache population
// while it is up) feeds the serve observability.
type framePrefetcher struct {
	v     *video.Video
	depth int

	mu    sync.Mutex
	cache map[int]core.Frame

	waiting     atomic.Bool
	builtWhile  atomic.Int64 // frames whose render completed while waiting
	inflightG   *obs.Gauge
	prefetchedC *obs.Counter
}

func newFramePrefetcher(v *video.Video, depth int, reg *obs.Registry, labels []obs.Label) *framePrefetcher {
	return &framePrefetcher{
		v:           v,
		depth:       depth,
		cache:       make(map[int]core.Frame, 2*depth),
		inflightG:   reg.Gauge(obs.MetricFramesInFlightWaiting, labels...),
		prefetchedC: reg.Counter(obs.MetricPrefetchedWaiting, labels...),
	}
}

// run follows the camera: each time a newer frame is published, render up to
// depth frames ahead of it. Exits when the buffer closes (camera done or run
// cancelled — the camera owns ctx observation).
//
//adavp:stage prefetch
func (pf *framePrefetcher) run(buf *frameBuffer) {
	n := pf.v.NumFrames()
	cursor := -1
	rendered := -1
	for {
		latest, ok := buf.waitNewer(cursor)
		if !ok {
			return
		}
		cursor = latest
		for i := latest + 1; i <= latest+pf.depth && i < n; i++ {
			if i <= rendered {
				continue
			}
			f := pf.v.FrameWithPixels(i)
			rendered = i
			pf.mu.Lock()
			pf.cache[i] = f
			for k := range pf.cache {
				if k <= i-2*pf.depth {
					delete(pf.cache, k)
				}
			}
			held := len(pf.cache)
			pf.mu.Unlock()
			if pf.waiting.Load() {
				// This render landed while the stream was queueing for a
				// detector slot: banked work, the whole point of the stage.
				pf.builtWhile.Add(1)
				pf.prefetchedC.Inc()
				pf.inflightG.Set(float64(held))
			}
		}
	}
}

// get returns the cached frame for index i, if the prefetcher got there.
func (pf *framePrefetcher) get(i int) (core.Frame, bool) {
	pf.mu.Lock()
	f, ok := pf.cache[i]
	pf.mu.Unlock()
	return f, ok
}

// setWaiting brackets the detector loop's slot acquisition; leaving the
// window resets the in-flight gauge (the banked frames are being consumed).
func (pf *framePrefetcher) setWaiting(w bool) {
	pf.waiting.Store(w)
	if !w {
		pf.inflightG.Set(0)
	}
}

// cycleWork is one detection hand-off from the detector to the tracker:
// track frames (RefFrame, EndFrame) against RefDets.
type cycleWork struct {
	RefFrame   int
	RefDets    []core.Detection
	EndFrame   int
	Setting    core.Setting
	Generation uint64
}

// Run executes the live pipeline over a video. It returns when every frame
// has been fed and all in-flight work has drained. When ctx is cancelled
// mid-run it returns the *partial* Result alongside the error, so callers
// can still evaluate the frames that did complete.
func Run(ctx context.Context, v *video.Video, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if v == nil || v.NumFrames() == 0 {
		return nil, fmt.Errorf("rt: empty video")
	}
	if cfg.Guard.Obs == nil {
		// The supervisor publishes its health gauge and fault counters into
		// the run's registry unless the caller routed it elsewhere.
		cfg.Guard.Obs = cfg.Obs
	}
	if cfg.Guard.Stream == "" {
		cfg.Guard.Stream = cfg.StreamID
	}
	if cfg.Workers > 0 {
		par.SetWorkers(cfg.Workers)
	}
	det := cfg.Detector
	if det == nil {
		det = detect.NewSimDetector(cfg.Seed, v.Params.W, v.Params.H)
	}
	var tr track.Tracker
	if cfg.NewTracker != nil {
		tr = cfg.NewTracker(cfg.Seed)
	} else {
		mt := track.NewModelTracker(cfg.Seed)
		mt.SetBounds(v.Bounds())
		tr = mt
	}
	p := &pipeline{
		v:        v,
		cfg:      cfg,
		det:      det,
		tracker:  tr,
		buffer:   newFrameBuffer(),
		selector: core.NewFrameSelector(),
		sup:      guard.New(cfg.Guard),
		outputs:  make([]core.FrameOutput, v.NumFrames()),
		work:     make(chan cycleWork, 1),
	}
	if cfg.Fault != nil {
		p.fdet = fault.NewDetector(det, *cfg.Fault, fault.Live)
		p.det = p.fdet
		p.ftrk = fault.NewTracker(tr, *cfg.Fault, fault.Live)
		p.tracker = p.ftrk
	}
	// Each thread gets its own latency model: the jitter stream is not
	// safe for concurrent use.
	root := rng.New(cfg.Seed)
	p.latDet = core.NewLatencyModel(root.DeriveString("rt-latency-detector"))
	p.latTrk = core.NewLatencyModel(root.DeriveString("rt-latency-tracker"))
	return p.run(ctx)
}

// pipeline holds the shared state of one live run.
type pipeline struct {
	v        *video.Video
	cfg      Config
	det      detect.Detector
	tracker  track.Tracker
	latDet   *core.LatencyModel // detector-thread latency emulation
	latTrk   *core.LatencyModel // tracker-thread latency emulation
	buffer   *frameBuffer
	selector *core.FrameSelector
	sup      *guard.Supervisor
	fdet     *fault.Detector // non-nil when a fault profile is injected
	ftrk     *fault.Tracker
	prefetch *framePrefetcher // non-nil when PipelineDepth>1 in pixel mode
	start    time.Time

	work chan cycleWork
	// generation counts detector fetches; the tracker cancels its remaining
	// tasks once the detector has moved on (§IV-B).
	generation atomic.Uint64
	// velocityBits shares the tracker's latest cycle velocity (Eq. 3) with
	// the detector thread for model adaptation.
	velocityBits atomic.Uint64

	outMu    sync.Mutex
	outputs  []core.FrameOutput
	cycles   atomic.Int64
	switches atomic.Int64
	deferred atomic.Int64

	// Written only by the detector goroutine, read by finish after wg.Wait.
	maxCalibAge time.Duration
	maxSlotOcc  time.Duration
}

// obsLabels appends stream=<id> to a series' labels in multi-stream runs.
func (p *pipeline) obsLabels(ls ...obs.Label) []obs.Label {
	if p.cfg.StreamID == "" {
		return ls
	}
	return append(ls, obs.L("stream", p.cfg.StreamID))
}

// frame fetches a frame (with pixels only in pixel mode). With the prefetch
// stage running, a warm render is returned as-is; a miss renders inline —
// identical bytes either way, the stage only moves the work off this path.
func (p *pipeline) frame(i int) core.Frame {
	if p.cfg.PixelMode {
		if p.prefetch != nil {
			if f, ok := p.prefetch.get(i); ok {
				return f
			}
		}
		return p.v.FrameWithPixels(i)
	}
	return p.v.Frame(i)
}

// sleep emulates a component latency, scaled.
func (p *pipeline) sleep(d time.Duration) {
	scaled := time.Duration(float64(d) * p.cfg.TimeScale)
	if scaled > 0 {
		time.Sleep(scaled)
	}
}

// setOutput records a frame's displayed result.
func (p *pipeline) setOutput(out core.FrameOutput) {
	p.outMu.Lock()
	p.outputs[out.FrameIndex] = out
	p.outMu.Unlock()
}

func (p *pipeline) run(ctx context.Context) (*Result, error) {
	p.start = time.Now()
	var wg sync.WaitGroup
	// Camera (main-thread duty): publish frames at the scaled capture rate.
	// Pacing is absolute (frame index derived from elapsed wall time) so
	// coarse OS timer resolution cannot skew the frame rate relative to the
	// scaled component latencies.
	wg.Add(1)
	//adavp:stage camera
	go func() {
		defer wg.Done()
		defer p.buffer.close()
		interval := time.Duration(float64(p.v.FrameInterval()) * p.cfg.TimeScale)
		if interval <= 0 {
			interval = time.Microsecond
		}
		start := time.Now()
		ticker := time.NewTicker(maxDur(interval, 200*time.Microsecond))
		defer ticker.Stop()
		for {
			due := int(time.Since(start) / interval)
			if due >= p.v.NumFrames() {
				due = p.v.NumFrames() - 1
			}
			p.buffer.push(due)
			if due >= p.v.NumFrames()-1 {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
		}
	}()

	// Frame-prefetch stage (serve-path pipelining): renders ahead of the
	// camera cursor so slot-wait time is spent building rasters. It exits
	// with the camera (buffer close), needing no ctx plumbing of its own.
	if p.cfg.PipelineDepth > 1 && p.cfg.PixelMode {
		p.prefetch = newFramePrefetcher(p.v, p.cfg.PipelineDepth, p.cfg.Obs, p.obsLabels())
		wg.Add(1)
		//adavp:stage prefetch
		go func() {
			defer wg.Done()
			p.prefetch.run(p.buffer)
		}()
	}

	// Object detector thread.
	wg.Add(1)
	//adavp:stage detector
	go func() {
		defer wg.Done()
		defer close(p.work)
		p.detectorLoop(ctx)
	}()

	// Object tracker thread.
	wg.Add(1)
	//adavp:stage tracker
	go func() {
		defer wg.Done()
		p.trackerLoop(ctx)
	}()

	wg.Wait()
	res := p.finish()
	if err := ctx.Err(); err != nil {
		res.Partial = true
		return res, fmt.Errorf("rt: run cancelled: %w", err)
	}
	return res, nil
}

// detectDeadline returns the wall-clock watchdog deadline for one Detect
// call at the given setting: the calibrated budget scaled to wall time,
// floored so that near-instant emulated calls are never spuriously flagged.
func (p *pipeline) detectDeadline(s core.Setting) time.Duration {
	gcfg := p.sup.Config()
	d := time.Duration(float64(p.latDet.DetectBudget(s, gcfg.WatchdogFactor)) * p.cfg.TimeScale)
	if d < gcfg.MinDeadline {
		d = gcfg.MinDeadline
	}
	return d
}

// superviseDetect runs one detection cycle under supervision: panic
// recovery, watchdog deadline, bounded retries with backoff, and model
// downgrades on repeated faults. ok is false when every attempt failed —
// the caller then keeps the previous calibration on screen. The returned
// setting reflects any downgrade (or post-recovery restore) applied.
func (p *pipeline) superviseDetect(ctx context.Context, frameIdx int, setting core.Setting) ([]core.Detection, core.Setting, bool) {
	cycle := int(p.cycles.Load())
	gcfg := p.sup.Config()
	for attempt := 0; ; attempt++ {
		frame := p.frame(frameIdx)
		s := setting
		dets, outcome := p.sup.Call(p.detectDeadline(s), func(callCtx context.Context) []core.Detection {
			// callCtx is the watchdog's abandonment signal for this one call,
			// distinct from the run-level ctx.
			return detect.DetectWith(callCtx, p.det, frame, s)
		})
		at := time.Since(p.start)
		if outcome == guard.OK {
			dets = detect.Sanitize(dets)
			recovered := p.sup.ObserveSuccess(len(dets) == 0, cycle, frameIdx, at)
			if recovered && p.cfg.Adaptation == nil {
				// Fixed-setting runs return to the configured model once
				// healthy; adaptive runs let the adaptation module climb
				// back on its own.
				setting = p.cfg.Setting
			}
			return dets, setting, true
		}
		dec := p.sup.ObserveFault(guard.ComponentDetector, outcome, cycle, frameIdx, at)
		if dec.Downgrade {
			// Check applicability before spending shared escalation budget:
			// at the smallest setting there is nothing to downgrade to, and a
			// stream saturated at 320 must not burn grants other streams
			// could still use (nor may the index ever walk below 320).
			if smaller, ok := core.NextSmaller(setting); ok && p.sup.AllowDowngrade(at) {
				p.sup.NoteDowngrade(cycle, frameIdx, at, setting.String(), smaller.String())
				setting = smaller
			}
		}
		if attempt >= gcfg.MaxRetries || ctx.Err() != nil {
			return nil, setting, false
		}
		p.sup.NoteRetry(cycle, frameIdx, at)
		if !sleepCtx(ctx, dec.Backoff) {
			return nil, setting, false
		}
	}
}

// detectorLoop is the GPU thread, written as a slot-requesting client: fetch
// newest frame, acquire a detector slot (the nil-Slots default grants
// instantly, making single-stream the N=1, K=1 special case), adapt the
// setting, detect (supervised), release the slot, hand off to the tracker.
//
//adavp:stage detector
func (p *pipeline) detectorLoop(ctx context.Context) {
	setting := p.cfg.Setting
	prevFrame := -1
	// lastFetched is the wait cursor: it advances on every fetch, granted or
	// refused, so a refused bootstrap fetch (prevFrame still -1) waits for the
	// NEXT captured frame instead of spinning on — and re-counting — the same
	// one.
	lastFetched := -1
	// deferring marks a refusal streak already counted: consecutive refused
	// attempts defer one pending detection, and the deferred counter counts
	// the detection once, not once per retry.
	deferring := false
	var prevDets []core.Detection
	var lastCalib time.Duration
	slots := p.cfg.Slots
	if slots == nil {
		slots = exclusiveSlots{}
	}
	for ctx.Err() == nil {
		frameIdx, ok := p.buffer.waitNewer(lastFetched)
		if !ok {
			return
		}
		lastFetched = frameIdx

		// Claim a shared detector slot before committing to the cycle. The
		// wait is measured here — the slot pool itself is clock-free. The
		// prefetch stage keeps rendering through this block: the waiting
		// bracket is what attributes its completions to the queueing window.
		slotStart := time.Now()
		if p.prefetch != nil {
			p.prefetch.setWaiting(true)
		}
		release, err := slots.Acquire(ctx, p.cfg.StreamID, setting, lastCalib)
		if p.prefetch != nil {
			p.prefetch.setWaiting(false)
		}
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Backpressure: the pool's wait queue is full. Skip this
			// detection — hand the buffered frames to the tracker so it keeps
			// extrapolating against the previous calibration — and re-request
			// at the next captured frame. Staleness grows; memory does not.
			if !deferring {
				deferring = true
				p.deferred.Add(1)
				p.cfg.Obs.Counter(obs.MetricDetectDeferred, p.obsLabels()...).Inc()
			}
			if prevFrame >= 0 {
				gen := p.generation.Add(1)
				select {
				case p.work <- cycleWork{RefFrame: prevFrame, RefDets: prevDets, EndFrame: frameIdx, Setting: setting, Generation: gen}:
				case <-ctx.Done():
					return
				}
				prevFrame = frameIdx
			}
			continue
		}
		deferring = false
		p.cfg.Obs.Histogram(obs.MetricSlotWait, obs.DefLatencyBuckets, p.obsLabels()...).
			ObserveDuration(time.Since(slotStart))
		// Occupancy runs from the grant to the release: setting-switch
		// overhead plus supervised detection, same definition as sim's
		// StreamOutcome.MaxOccupancy.
		slotGranted := time.Now()
		// Frames kept arriving while we queued for the slot: detect the
		// newest one, not the one that triggered the request.
		if newest, stillOpen := p.buffer.waitNewer(frameIdx - 1); stillOpen && newest > frameIdx {
			frameIdx = newest
		}
		// Fetching a new frame tells the tracker to wind down (§IV-B).
		gen := p.generation.Add(1)

		// Model adaptation: the velocity measured during the previous cycle
		// picks this cycle's setting.
		if p.cfg.Adaptation != nil && prevFrame >= 0 {
			if bits := p.velocityBits.Load(); bits != 0 {
				vel := float64FromBits(bits)
				if track.ValidVelocity(vel) {
					if next := p.cfg.Adaptation.Next(setting, vel); next != setting {
						swStart := time.Now()
						p.sleep(p.latDet.SettingSwitch())
						p.switches.Add(1)
						adapt.PublishDecision(p.cfg.Obs, setting, next, vel, time.Since(swStart), time.Since(p.start), p.obsLabels()...)
						setting = next
					} else {
						adapt.PublishDecision(p.cfg.Obs, setting, next, vel, 0, time.Since(p.start), p.obsLabels()...)
					}
				}
			}
		}

		// Hand the accumulated frames to the tracker before starting the
		// new inference, so both work in parallel.
		if prevFrame >= 0 {
			select {
			case p.work <- cycleWork{RefFrame: prevFrame, RefDets: prevDets, EndFrame: frameIdx, Setting: setting, Generation: gen}:
			case <-ctx.Done():
				release()
				return
			}
		}

		detStart := time.Now()
		dets, newSetting, detected := p.superviseDetect(ctx, frameIdx, setting)
		setting = newSetting
		p.sleep(p.latDet.Detect(setting))
		occ := time.Since(slotGranted)
		if occ > p.maxSlotOcc {
			p.maxSlotOcc = occ
		}
		release()
		// Execution time (grant → release) is the other half of the
		// queueing/execution split: MetricSlotWait above measured the queue,
		// this histogram measures the slot itself.
		p.cfg.Obs.Histogram(obs.MetricSlotExec, obs.DefLatencyBuckets, p.obsLabels()...).
			ObserveDuration(occ)
		newCalib := time.Since(p.start)
		if age := newCalib - lastCalib; age > p.maxCalibAge {
			p.maxCalibAge = age
		}
		lastCalib = newCalib
		// The detect observation spans supervision (including retries and
		// backoff) plus the emulated inference itself, labeled with the
		// setting that ended the cycle and the health it left behind.
		p.cfg.Obs.StageHistogram(obs.StageDetect, p.obsLabels(
			obs.L("setting", setting.String()),
			obs.L("health", p.sup.Health().String()),
		)...).ObserveDuration(time.Since(detStart))
		if detected {
			p.setOutput(core.FrameOutput{FrameIndex: frameIdx, Source: core.SourceDetector, Setting: setting, Detections: dets})
			prevDets = dets
		} else {
			// Every attempt faulted: hold the previous calibration on
			// screen and keep tracking against it.
			p.setOutput(core.FrameOutput{FrameIndex: frameIdx, Source: core.SourceHeld, Setting: setting, Detections: prevDets})
		}
		p.cycles.Add(1)
		p.cfg.Obs.Counter(obs.MetricCycles, p.obsLabels()...).Inc()
		prevFrame = frameIdx
		if frameIdx > lastFetched {
			lastFetched = frameIdx
		}
	}
}

// trackerLoop is the CPU thread: process each cycle's buffered frames under
// panic supervision, validating every velocity sample before it can reach
// the adaptation model.
//
//adavp:stage tracker
func (p *pipeline) trackerLoop(ctx context.Context) {
	for w := range p.work {
		if ctx.Err() != nil {
			return
		}
		buffered := w.EndFrame - 1 - w.RefFrame
		if buffered <= 0 {
			continue
		}
		feStart := time.Now()
		if !p.safeTrackInit(p.frame(w.RefFrame), w.RefDets) {
			continue
		}
		p.sleep(p.latTrk.FeatureExtract())
		// Feature extraction is CPU-track work, same as in the simulator's
		// busy log.
		p.cfg.Obs.StageHistogram(obs.StageTrack, p.obsLabels()...).ObserveDuration(time.Since(feStart))

		plan := p.selector.Plan(buffered)
		tracked := 0
		var velSum float64
		var velN int
		cur := w.RefDets
		for _, idx := range plan {
			// §IV-B: cancel after the current task once the detector has
			// fetched a newer frame.
			if p.generation.Load() > w.Generation {
				break
			}
			frameIdx := w.RefFrame + 1 + idx
			stepStart := time.Now()
			dets, vel, ok := p.safeTrackStep(p.frame(frameIdx))
			if !ok {
				// The tracker panicked mid-cycle: hold the last good boxes
				// for this frame and abandon the rest of the cycle — the
				// next detection re-initializes the tracker from scratch.
				p.setOutput(core.FrameOutput{FrameIndex: frameIdx, Source: core.SourceHeld, Setting: w.Setting, Detections: cur})
				tracked++
				break
			}
			dets = detect.Sanitize(dets)
			p.sleep(p.latTrk.TrackFrame(len(cur)))
			p.cfg.Obs.StageHistogram(obs.StageTrack, p.obsLabels()...).ObserveDuration(time.Since(stepStart))
			ovStart := time.Now()
			p.sleep(p.latTrk.Overlay())
			p.setOutput(core.FrameOutput{FrameIndex: frameIdx, Source: core.SourceTracker, Setting: w.Setting, Detections: dets})
			p.cfg.Obs.StageHistogram(obs.StageOverlay, p.obsLabels()...).ObserveDuration(time.Since(ovStart))
			cur = dets
			tracked++
			if track.ValidVelocity(vel) {
				velSum += vel
				velN++
			}
		}
		p.selector.Update(tracked, buffered)
		if velN > 0 {
			if m := velSum / float64(velN); track.ValidVelocity(m) {
				p.velocityBits.Store(float64ToBits(m))
			}
		}
	}
}

// safeTrackInit calls Tracker.Init with panic recovery.
func (p *pipeline) safeTrackInit(f core.Frame, dets []core.Detection) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			p.sup.ObserveFault(guard.ComponentTracker, guard.Panicked, int(p.cycles.Load()), f.Index, time.Since(p.start))
			ok = false
		}
	}()
	p.tracker.Init(f, dets)
	return true
}

// safeTrackStep calls Tracker.Step with panic recovery.
func (p *pipeline) safeTrackStep(f core.Frame) (dets []core.Detection, vel float64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			p.sup.ObserveFault(guard.ComponentTracker, guard.Panicked, int(p.cycles.Load()), f.Index, time.Since(p.start))
			dets, vel, ok = nil, 0, false
		}
	}()
	dets, vel = p.tracker.Step(f)
	return dets, vel, true
}

// finish hold-fills unprocessed frames and evaluates the run.
func (p *pipeline) finish() *Result {
	n := p.v.NumFrames()
	res := &Result{
		Outputs:          p.outputs,
		FrameF1:          make([]float64, n),
		Cycles:           int(p.cycles.Load()),
		Switches:         int(p.switches.Load()),
		Deferred:         int(p.deferred.Load()),
		MaxCalibAge:      p.maxCalibAge,
		MaxSlotOccupancy: p.maxSlotOcc,
		Health:           p.sup.Health(),
		Faults:           p.sup.Stats(),
		Events:           p.sup.Events(),
	}
	if p.prefetch != nil {
		res.PrefetchedWhileWaiting = int(p.prefetch.builtWhile.Load())
	}
	if p.fdet != nil {
		res.Injected = make(map[string]int)
		for _, src := range []struct {
			comp   string
			counts map[fault.Kind]int
			events []fault.Event
		}{
			{"detector", p.fdet.Counts(), p.fdet.Events()},
			{"tracker", p.ftrk.Counts(), p.ftrk.Events()},
		} {
			for k, c := range src.counts {
				res.Injected[src.comp+":"+k.String()] = c
			}
			for _, ev := range src.events {
				res.Events = append(res.Events, trace.FaultEvent{
					Component: ev.Component, Kind: ev.Kind.String(),
					Action: "injected", Cycle: ev.Call,
				})
				p.cfg.Obs.Counter(obs.MetricFaultsInjected,
					p.obsLabels(obs.L("component", ev.Component), obs.L("kind", ev.Kind.String()))...).Inc()
				component := ev.Component
				if p.cfg.StreamID != "" {
					component += "@" + p.cfg.StreamID
				}
				p.cfg.Obs.Record(time.Since(p.start), component, ev.Kind.String(), "injected")
			}
		}
	}
	var last core.FrameOutput
	haveLast := false
	for i := 0; i < n; i++ {
		if p.outputs[i].Source == core.SourceNone {
			if haveLast {
				p.outputs[i] = core.FrameOutput{
					FrameIndex: i, Source: core.SourceHeld,
					Setting: last.Setting, Detections: last.Detections,
				}
			} else {
				p.outputs[i] = core.FrameOutput{FrameIndex: i, Source: core.SourceNone}
			}
		} else {
			p.outputs[i].FrameIndex = i
			last = p.outputs[i]
			haveLast = true
		}
		if src := p.outputs[i].Source; src != core.SourceNone {
			p.cfg.Obs.Counter(obs.MetricFrames, p.obsLabels(obs.L("source", src.String()))...).Inc()
		}
		res.FrameF1[i] = metrics.FrameF1(p.outputs[i].Detections, p.v.Truth(i), metrics.DefaultIoU)
	}
	res.Accuracy = metrics.VideoAccuracy(res.FrameF1, metrics.DefaultAlpha)
	res.MeanF1 = metrics.Mean(res.FrameF1)
	return res
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// sleepCtx sleeps for d or until ctx is cancelled, reporting whether the
// full duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// float bit helpers for the atomic velocity cell.
func float64ToBits(f float64) uint64   { return math.Float64bits(f) }
func float64FromBits(b uint64) float64 { return math.Float64frombits(b) }
