package rt

import (
	"context"
	"math"
	"testing"
	"time"

	"adavp/internal/adapt"
	"adavp/internal/core"
	"adavp/internal/fault"
	"adavp/internal/geom"
	"adavp/internal/guard"
	"adavp/internal/track"
	"adavp/internal/video"
)

// Failure-injection tests for the live pipeline, the goroutine counterpart of
// internal/sim/failure_test.go: the run must stay well-formed (one output per
// frame, bounded F1, no deadlock) when components misbehave, and the
// supervisor must account for hangs and panics instead of letting them kill
// or stall the run. All of these execute under -race in CI.

// emptyDetector never detects anything.
type emptyDetector struct{}

func (emptyDetector) Detect(core.Frame, core.Setting) []core.Detection { return nil }

// garbageDetector returns malformed detections: negative sizes, NaN
// coordinates, invalid classes, out-of-frame boxes.
type garbageDetector struct{}

func (garbageDetector) Detect(core.Frame, core.Setting) []core.Detection {
	return []core.Detection{
		{Class: core.Class(99), Box: geom.Rect{Left: -50, Top: -50, W: -10, H: -10}, Score: 2},
		{Class: core.ClassCar, Box: geom.Rect{Left: math.NaN(), Top: 10, W: 20, H: 10}, Score: 0.5},
		{Class: core.ClassCar, Box: geom.Rect{Left: 1e9, Top: 1e9, W: 5, H: 5}, Score: -1},
	}
}

// flakyDetector fails (returns nothing) on every other invocation and echoes
// ground truth otherwise. Supervised calls never overlap unless the watchdog
// abandons one, and this detector never blocks, so the bare counter is safe
// under -race.
type flakyDetector struct {
	calls int
}

func (d *flakyDetector) Detect(f core.Frame, s core.Setting) []core.Detection {
	d.calls++
	if d.calls%2 == 0 {
		return nil
	}
	out := make([]core.Detection, 0, len(f.Truth))
	for _, o := range f.Truth {
		out = append(out, core.Detection{Class: o.Class, Box: o.Box, Score: 0.9, TrackID: o.ID})
	}
	return out
}

// checkWellFormed asserts the structural invariants every run must keep.
func checkWellFormed(t *testing.T, r *Result, frames int) {
	t.Helper()
	if len(r.Outputs) != frames {
		t.Fatalf("%d outputs for %d frames", len(r.Outputs), frames)
	}
	for i, out := range r.Outputs {
		if out.FrameIndex != i {
			t.Fatalf("output %d has frame index %d", i, out.FrameIndex)
		}
		for _, d := range out.Detections {
			if math.IsNaN(d.Box.Left) || math.IsInf(d.Box.Left, 0) ||
				d.Box.W <= 0 || d.Box.H <= 0 || d.Score < 0 || d.Score > 1 {
				t.Fatalf("frame %d: malformed detection %+v escaped sanitization", i, d)
			}
		}
	}
	for i, f1 := range r.FrameF1 {
		if math.IsNaN(f1) || f1 < 0 || f1 > 1 {
			t.Fatalf("frame %d F1 = %f", i, f1)
		}
	}
}

func TestLiveSurvivesEmptyDetector(t *testing.T) {
	v := video.GenerateKind("fi", video.KindHighway, 5, 200)
	cfg := liveConfig()
	cfg.Detector = emptyDetector{}
	r, err := Run(context.Background(), v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, r, v.NumFrames())
	if r.Accuracy > 0.6 {
		t.Errorf("accuracy %.2f with a blind detector", r.Accuracy)
	}
	// A permanently empty detector is a fault signature: the empty-burst
	// detector must have noticed.
	if r.Faults.EmptyBursts == 0 {
		t.Error("no empty burst recorded for an always-empty detector")
	}
}

func TestLiveSurvivesGarbageDetector(t *testing.T) {
	v := video.GenerateKind("fi", video.KindHighway, 5, 200)
	cfg := liveConfig()
	cfg.Detector = garbageDetector{}
	r, err := Run(context.Background(), v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, r, v.NumFrames())
	if r.MeanF1 > 0.5 {
		t.Errorf("garbage detections scored %.2f mean F1", r.MeanF1)
	}
}

func TestLiveSurvivesFlakyDetector(t *testing.T) {
	v := video.GenerateKind("fi", video.KindHighway, 5, 200)
	cfg := liveConfig()
	cfg.Detector = &flakyDetector{}
	r, err := Run(context.Background(), v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, r, v.NumFrames())
	if r.Accuracy <= 0 {
		t.Error("flaky detector zeroed accuracy entirely")
	}
}

// poisonTracker reports NaN or +Inf velocities; boxes pass through unchanged.
type poisonTracker struct {
	dets  []core.Detection
	steps int
	inf   bool
}

func (t *poisonTracker) Init(_ core.Frame, dets []core.Detection) int {
	t.dets = dets
	return len(dets)
}

func (t *poisonTracker) Step(core.Frame) ([]core.Detection, float64) {
	t.steps++
	if t.inf {
		return t.dets, math.Inf(1)
	}
	return t.dets, math.NaN()
}

func TestLiveSurvivesPoisonedVelocity(t *testing.T) {
	// Regression: +Inf velocity passed the old `vel > 0` filter and reached
	// the adaptation model; NaN failed every threshold comparison and pinned
	// the setting. Both must now be rejected before the velocity cell.
	for _, inf := range []bool{false, true} {
		name := "nan"
		if inf {
			name = "inf"
		}
		t.Run(name, func(t *testing.T) {
			v := video.GenerateKind("fi", video.KindHighway, 7, 200)
			cfg := liveConfig()
			cfg.Adaptation = adapt.DefaultModel()
			cfg.Setting = core.Setting608
			cfg.NewTracker = func(uint64) track.Tracker { return &poisonTracker{inf: inf} }
			r, err := Run(context.Background(), v, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkWellFormed(t, r, v.NumFrames())
			for i, out := range r.Outputs {
				if out.Source != core.SourceNone && !out.Setting.Valid() {
					t.Fatalf("frame %d ran at invalid setting after poisoned velocity", i)
				}
			}
			// No valid velocity ever reached the model, so AdaVP must not
			// have switched away from its initial setting.
			if r.Switches != 0 {
				t.Errorf("poisoned velocities caused %d setting switches", r.Switches)
			}
		})
	}
}

func TestLiveOneFrameVideo(t *testing.T) {
	v := video.GenerateKind("one", video.KindHighway, 9, 1)
	r, err := Run(context.Background(), v, liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outputs) != 1 {
		t.Fatalf("%d outputs", len(r.Outputs))
	}
}

func TestLiveVeryShortVideos(t *testing.T) {
	for frames := 1; frames <= 8; frames++ {
		v := video.GenerateKind("short", video.KindCityStreet, uint64(frames), frames)
		r, err := Run(context.Background(), v, liveConfig())
		if err != nil {
			t.Fatalf("%d frames: %v", frames, err)
		}
		if len(r.Outputs) != frames {
			t.Fatalf("%d frames: %d outputs", frames, len(r.Outputs))
		}
	}
}

// faultCampaignConfig builds a live config with an injected hang/panic
// campaign and a watchdog tight enough to catch hangs quickly in a test.
// Hangs are kept short: a tracker hang stalls the (deliberately unsupervised)
// tracker thread for its full duration, which backpressures the detector
// through the work channel — realistic, but it bounds how many detection
// cycles fit in the camera window.
func faultCampaignConfig(rate float64, kinds []fault.Kind) Config {
	cfg := liveConfig()
	cfg.Fault = &fault.Profile{
		Rate:  rate,
		Kinds: kinds,
		Hang:  30 * time.Millisecond,
		Spike: 5 * time.Millisecond,
		Seed:  99,
	}
	cfg.Guard = guard.Config{
		MinDeadline: 12 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	}
	return cfg
}

// TestLiveSurvivesHangAndPanicFaults is the acceptance scenario: a hang/panic
// campaign must complete without crash or deadlock, emit one output per
// frame, and report nonzero fault and recovery counters. The schedule is a
// pure function of the profile seed, so which call indices fault is fixed;
// only the number of cycles varies with scheduling, and the video is long
// enough that the detector always reaches the faulted indices.
func TestLiveSurvivesHangAndPanicFaults(t *testing.T) {
	v := video.GenerateKind("fc", video.KindHighway, 5, 1500)
	cfg := faultCampaignConfig(0.20, []fault.Kind{fault.KindHang, fault.KindPanic})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	r, err := Run(ctx, v, cfg)
	if err != nil {
		t.Fatalf("fault campaign crashed the run: %v", err)
	}
	checkWellFormed(t, r, v.NumFrames())
	injected := 0
	for _, n := range r.Injected {
		injected += n
	}
	if injected == 0 {
		t.Fatal("10% campaign injected nothing; raise frames or check the schedule")
	}
	if r.Faults.Timeouts+r.Faults.Panics == 0 {
		t.Errorf("faults injected (%v) but supervisor observed none: %+v", r.Injected, r.Faults)
	}
	if r.Faults.Retries == 0 {
		t.Errorf("hard faults observed but no retries recorded: %+v", r.Faults)
	}
	if r.Faults.Recoveries == 0 {
		t.Errorf("pipeline never recovered to healthy: %+v (final health %v)", r.Faults, r.Health)
	}
	if len(r.Events) == 0 {
		t.Error("no fault events recorded")
	}
}

// TestLiveTenPercentHangPanicCampaign pins the headline acceptance numbers:
// at a 10% hang/panic rate the run completes without crash or deadlock under
// -race, emits one output per frame, and the supervisor observes faults.
// (The 20% test above additionally asserts retries and recoveries, which
// need a denser schedule to be deterministic.)
func TestLiveTenPercentHangPanicCampaign(t *testing.T) {
	v := video.GenerateKind("fc", video.KindHighway, 5, 1500)
	cfg := faultCampaignConfig(0.10, []fault.Kind{fault.KindHang, fault.KindPanic})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	r, err := Run(ctx, v, cfg)
	if err != nil {
		t.Fatalf("10%% campaign crashed the run: %v", err)
	}
	checkWellFormed(t, r, v.NumFrames())
	if len(r.Injected) == 0 {
		t.Fatal("10% campaign injected nothing")
	}
	if r.Faults.Faults() == 0 {
		t.Errorf("faults injected (%v) but supervisor counters all zero: %+v", r.Injected, r.Faults)
	}
}

// TestLiveDataFaultCampaign runs the data-corruption kinds; outputs must stay
// sanitized and the run well-formed.
func TestLiveDataFaultCampaign(t *testing.T) {
	v := video.GenerateKind("fc", video.KindHighway, 5, 250)
	cfg := faultCampaignConfig(0.25, []fault.Kind{fault.KindEmpty, fault.KindGarbage, fault.KindNaN})
	cfg.Adaptation = adapt.DefaultModel()
	r, err := Run(context.Background(), v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, r, v.NumFrames())
	if len(r.Injected) == 0 {
		t.Fatal("25% campaign injected nothing")
	}
	for i, out := range r.Outputs {
		if out.Source != core.SourceNone && !out.Setting.Valid() {
			t.Fatalf("frame %d at invalid setting under NaN/garbage faults", i)
		}
	}
}

// TestLiveFaultFreeCountersZero pins the acceptance criterion that the
// supervision layer is invisible on clean runs: no faults, no retries, no
// downgrades, healthy at the end.
func TestLiveFaultFreeCountersZero(t *testing.T) {
	v := video.GenerateKind("hw", video.KindHighway, 5, 200)
	r, err := Run(context.Background(), v, liveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults != (guard.Stats{}) {
		t.Errorf("fault-free run has nonzero counters: %+v", r.Faults)
	}
	if r.Health != guard.Healthy {
		t.Errorf("fault-free run ended %v", r.Health)
	}
	if r.Injected != nil || len(r.Events) != 0 {
		t.Errorf("fault-free run logged events: %v %v", r.Injected, r.Events)
	}
	if r.Partial {
		t.Error("complete run marked partial")
	}
}

// TestCancellationReturnsPartialResult pins satellite (a): a cancelled run
// returns the frames that completed, marked Partial, alongside the error.
func TestCancellationReturnsPartialResult(t *testing.T) {
	v := video.GenerateKind("hw", video.KindHighway, 5, 3000)
	cfg := liveConfig()
	cfg.TimeScale = 0.05 // slow enough that cancellation lands mid-run
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	r, err := Run(ctx, v, cfg)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if r == nil {
		t.Fatal("cancelled run returned nil Result")
	}
	if !r.Partial {
		t.Error("cancelled run not marked partial")
	}
	if len(r.Outputs) != v.NumFrames() {
		t.Fatalf("partial result has %d output slots for %d frames", len(r.Outputs), v.NumFrames())
	}
	// finish() hold-fills the tail, so every frame has an output; the frames
	// the pipeline actually processed are the detector/tracker-sourced ones.
	fresh, lastFresh := 0, -1
	for i, out := range r.Outputs {
		if out.Source == core.SourceDetector || out.Source == core.SourceTracker {
			fresh++
			lastFresh = i
		}
	}
	if fresh == 0 {
		t.Error("partial result contains no completed frames")
	}
	if lastFresh >= v.NumFrames()-1 {
		t.Error("cancellation did not actually cut the run short")
	}
}

// hangingDetector blocks until released; used to drive the watchdog directly.
type hangingDetector struct {
	release chan struct{}
}

func (d *hangingDetector) Detect(core.Frame, core.Setting) []core.Detection {
	<-d.release
	return nil
}

func TestWatchdogAbandonsHungDetector(t *testing.T) {
	v := video.GenerateKind("hang", video.KindHighway, 3, 60)
	release := make(chan struct{})
	defer close(release)
	cfg := liveConfig()
	cfg.Detector = &hangingDetector{release: release}
	cfg.Guard = guard.Config{
		MinDeadline: 10 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r, err := Run(ctx, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, r, v.NumFrames())
	if r.Faults.Timeouts == 0 || r.Faults.Abandoned == 0 {
		t.Errorf("permanently hung detector produced no timeouts: %+v", r.Faults)
	}
	if r.Health == guard.Healthy {
		t.Error("run with a dead detector ended healthy")
	}
}

// panicDetector panics on every call.
type panicDetector struct{}

func (panicDetector) Detect(core.Frame, core.Setting) []core.Detection {
	panic("rt test: injected detector panic")
}

func TestSupervisorRecoversDetectorPanics(t *testing.T) {
	v := video.GenerateKind("pan", video.KindHighway, 3, 80)
	cfg := liveConfig()
	cfg.Detector = panicDetector{}
	cfg.Guard = guard.Config{
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
	r, err := Run(context.Background(), v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, r, v.NumFrames())
	if r.Faults.Panics == 0 {
		t.Errorf("always-panicking detector recorded no panics: %+v", r.Faults)
	}
	// Repeated hard faults must have escalated to smaller settings.
	if r.Faults.Downgrades == 0 {
		t.Errorf("no downgrades after persistent panics: %+v", r.Faults)
	}
}

// panicTracker panics on Step.
type panicTracker struct{ dets []core.Detection }

func (t *panicTracker) Init(_ core.Frame, dets []core.Detection) int {
	t.dets = dets
	return len(dets)
}

func (t *panicTracker) Step(core.Frame) ([]core.Detection, float64) {
	panic("rt test: injected tracker panic")
}

func TestSupervisorRecoversTrackerPanics(t *testing.T) {
	v := video.GenerateKind("pan", video.KindHighway, 3, 150)
	cfg := liveConfig()
	cfg.NewTracker = func(uint64) track.Tracker { return &panicTracker{} }
	r, err := Run(context.Background(), v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, r, v.NumFrames())
	if r.Faults.Panics == 0 {
		t.Errorf("panicking tracker recorded no panics: %+v", r.Faults)
	}
}
