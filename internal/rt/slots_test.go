package rt

import (
	"context"
	"testing"
	"time"

	"adavp/internal/core"
	"adavp/internal/guard"
	"adavp/internal/obs"
	"adavp/internal/video"
)

// TestEscalationClampsAtSmallestSetting drives repeated hard faults against
// a pipeline already running at the smallest setting: escalation must have
// nowhere to go — no downgrade recorded, no shared budget consumed, no
// setting ever leaving the valid ladder. This is the regression test for
// index underflow / re-escalation churn at 320.
func TestEscalationClampsAtSmallestSetting(t *testing.T) {
	v := video.GenerateKind("sat", video.KindHighway, 3, 120)
	budget := guard.NewEscalationBudget(10)
	cfg := liveConfig()
	cfg.Setting = core.Setting320
	cfg.Detector = panicDetector{}
	cfg.Guard = guard.Config{
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Budget:      budget,
	}
	r, err := Run(context.Background(), v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, r, v.NumFrames())
	if r.Faults.Panics == 0 {
		t.Fatal("campaign produced no faults; the saturation path was never exercised")
	}
	if r.Faults.Downgrades != 0 {
		t.Errorf("%d downgrades recorded at the smallest setting", r.Faults.Downgrades)
	}
	if got := budget.Remaining(); got != 10 {
		t.Errorf("budget burned to %d by inapplicable downgrades at 320, want 10 untouched", got)
	}
	for i, out := range r.Outputs {
		if out.Source != core.SourceNone && out.Setting != core.Setting320 {
			t.Fatalf("frame %d ran at %v; saturation must pin the smallest setting", i, out.Setting)
		}
	}
}

// TestEscalationWalksLadderThenSaturates starts at the largest setting under
// persistent faults: the supervisor may walk 608→512→416→320 (one budget
// grant per applied downgrade) and must then stop — downgrades can never
// exceed the ladder length, and the budget burn must equal the downgrades
// actually applied.
func TestEscalationWalksLadderThenSaturates(t *testing.T) {
	v := video.GenerateKind("sat", video.KindHighway, 3, 200)
	budget := guard.NewEscalationBudget(10)
	cfg := liveConfig()
	cfg.Setting = core.Setting608
	cfg.Detector = panicDetector{}
	cfg.Guard = guard.Config{
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Budget:      budget,
	}
	r, err := Run(context.Background(), v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, r, v.NumFrames())
	maxLadder := len(core.AdaptiveSettings) - 1
	if r.Faults.Downgrades > maxLadder {
		t.Errorf("%d downgrades exceed the %d-step ladder", r.Faults.Downgrades, maxLadder)
	}
	if got, want := budget.Remaining(), 10-r.Faults.Downgrades; got != want {
		t.Errorf("budget remaining %d after %d downgrades, want %d", got, r.Faults.Downgrades, want)
	}
	for i, out := range r.Outputs {
		if out.Source != core.SourceNone && !out.Setting.Valid() {
			t.Fatalf("frame %d at invalid setting %v during escalation", i, out.Setting)
		}
	}
}

// TestCancellationJournalConsistent pins the cancellation-timing contract:
// however the run is cut, the partial result and the published telemetry
// must agree — every detection cycle is recorded exactly once (detect-stage
// samples == cycle counter == Result.Cycles, no duplicated or half-recorded
// cycle) and the frame counters match the outputs actually returned. Runs
// under -race via make race.
func TestCancellationJournalConsistent(t *testing.T) {
	for _, afterMS := range []int{20, 50, 90} {
		v := video.GenerateKind("cancel", video.KindHighway, 5, 3000)
		reg := obs.NewRegistry()
		cfg := liveConfig()
		cfg.TimeScale = 0.05
		cfg.Obs = reg
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(afterMS)*time.Millisecond)
		r, err := Run(ctx, v, cfg)
		cancel()
		if err == nil {
			t.Fatalf("cancel@%dms: run was not cut short", afterMS)
		}
		if r == nil || !r.Partial {
			t.Fatalf("cancel@%dms: no partial result", afterMS)
		}
		snap := reg.Snapshot()
		var detectSamples, cycleCount int64
		for _, h := range snap.Histograms {
			if h.Name == obs.MetricStageLatency && hasLabel(h.Labels, "stage", obs.StageDetect) {
				detectSamples += h.Count
			}
		}
		frameCounts := map[string]int64{}
		for _, c := range snap.Counters {
			switch c.Name {
			case obs.MetricCycles:
				cycleCount += c.Value
			case obs.MetricFrames:
				for _, l := range c.Labels {
					if l.Key == "source" {
						frameCounts[l.Value] += c.Value
					}
				}
			}
		}
		if detectSamples != int64(r.Cycles) || cycleCount != int64(r.Cycles) {
			t.Errorf("cancel@%dms: detect samples %d / cycle counter %d / result cycles %d must all agree",
				afterMS, detectSamples, cycleCount, r.Cycles)
		}
		want := map[string]int64{}
		for _, out := range r.Outputs {
			if out.Source != core.SourceNone {
				want[out.Source.String()]++
			}
		}
		for src, n := range want {
			if frameCounts[src] != n {
				t.Errorf("cancel@%dms: frames{source=%s} counter %d, outputs have %d",
					afterMS, src, frameCounts[src], n)
			}
		}
		for src, n := range frameCounts {
			if want[src] != n {
				t.Errorf("cancel@%dms: counter reports %d %s frames not present in outputs", afterMS, n, src)
			}
		}
	}
}

func hasLabel(ls []obs.Label, key, value string) bool {
	for _, l := range ls {
		if l.Key == key && l.Value == value {
			return true
		}
	}
	return false
}
