// Package metrics implements the evaluation measures of the paper's §III-A
// and §VI-A: IoU-based matching of detections against ground truth,
// per-frame F1 score, and the per-video accuracy metric (fraction of frames
// whose F1 exceeds a threshold α), plus the CDF/histogram helpers used by
// the evaluation figures.
package metrics

import (
	"math"
	"sort"

	"adavp/internal/core"
)

// DefaultIoU is the IoU threshold for a true positive (paper: 0.5;
// Fig. 11 additionally evaluates 0.6).
const DefaultIoU = 0.5

// DefaultAlpha is the per-frame F1 threshold defining an "accurate" frame
// (paper: 0.7; Fig. 10 additionally evaluates 0.75).
const DefaultAlpha = 0.7

// MatchResult counts the outcome of matching one frame's detections against
// its ground truth.
type MatchResult struct {
	TP, FP, FN int
}

// Match greedily matches detections to ground-truth objects. A detection is
// a true positive when it has the same label as an unmatched ground-truth
// object and their boxes overlap with IoU >= iouThresh (Eq. 2). Detections
// are considered in decreasing score order and each claims the unmatched
// ground-truth box of the same class with the highest IoU, mirroring the
// standard VOC/COCO greedy protocol.
func Match(dets []core.Detection, truth []core.Object, iouThresh float64) MatchResult {
	if iouThresh <= 0 {
		iouThresh = DefaultIoU
	}
	order := make([]int, len(dets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return dets[order[a]].Score > dets[order[b]].Score })

	used := make([]bool, len(truth))
	var res MatchResult
	for _, di := range order {
		d := dets[di]
		best := -1
		bestIoU := iouThresh
		for ti, g := range truth {
			if used[ti] || g.Class != d.Class {
				continue
			}
			if iou := d.Box.IoU(g.Box); iou >= bestIoU {
				bestIoU = iou
				best = ti
			}
		}
		if best >= 0 {
			used[best] = true
			res.TP++
		} else {
			res.FP++
		}
	}
	res.FN = len(truth) - res.TP
	return res
}

// Precision returns TP / (TP + FP), or 0 when nothing was detected.
func (m MatchResult) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP / (TP + FN), or 0 when there is no ground truth.
func (m MatchResult) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall:
//
//	F1 = 2·P·R / (P + R)
//
// (the paper's Eq. 1 misprints this as 2(1/P + 1/R); the harmonic mean is
// what its results use). Convention for degenerate frames: when the frame
// has no ground-truth objects and the scheme detects nothing, the frame is
// scored 1 (nothing to find, nothing falsely reported); if exactly one side
// is empty, the score is 0.
func (m MatchResult) F1() float64 {
	if m.TP+m.FP == 0 && m.TP+m.FN == 0 {
		return 1
	}
	p := m.Precision()
	r := m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FrameF1 is shorthand for Match(...).F1().
func FrameF1(dets []core.Detection, truth []core.Object, iouThresh float64) float64 {
	return Match(dets, truth, iouThresh).F1()
}

// VideoAccuracy returns the fraction of frames whose F1 score is at least
// alpha — the paper's per-video accuracy metric ("if the accuracy of a video
// is 0.6, 60% of frames have F1 higher than 0.7").
func VideoAccuracy(frameF1 []float64, alpha float64) float64 {
	if len(frameF1) == 0 {
		return 0
	}
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	count := 0
	for _, f := range frameF1 {
		if f >= alpha {
			count++
		}
	}
	return float64(count) / float64(len(frameF1))
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation, or 0 for fewer than two
// samples.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// P returns the empirical probability that a sample is <= x.
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0, 1]) by nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// Histogram counts samples into equal-width bins over [lo, hi); samples
// outside the range land in the first/last bin.
func Histogram(samples []float64, lo, hi float64, bins int) []int {
	if bins <= 0 {
		return nil
	}
	out := make([]int, bins)
	if hi <= lo {
		out[0] = len(samples)
		return out
	}
	width := (hi - lo) / float64(bins)
	for _, s := range samples {
		b := int((s - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		out[b]++
	}
	return out
}
