package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"adavp/internal/core"
	"adavp/internal/geom"
	"adavp/internal/rng"
)

func det(c core.Class, l, t, w, h, score float64) core.Detection {
	return core.Detection{Class: c, Box: geom.Rect{Left: l, Top: t, W: w, H: h}, Score: score}
}

func obj(id int, c core.Class, l, t, w, h float64) core.Object {
	return core.Object{ID: id, Class: c, Box: geom.Rect{Left: l, Top: t, W: w, H: h}}
}

func TestMatchPerfect(t *testing.T) {
	truth := []core.Object{
		obj(1, core.ClassCar, 10, 10, 20, 10),
		obj(2, core.ClassPerson, 50, 20, 8, 20),
	}
	dets := []core.Detection{
		det(core.ClassCar, 10, 10, 20, 10, 0.9),
		det(core.ClassPerson, 50, 20, 8, 20, 0.8),
	}
	m := Match(dets, truth, 0.5)
	if m != (MatchResult{TP: 2, FP: 0, FN: 0}) {
		t.Errorf("Match = %+v", m)
	}
	if m.F1() != 1 {
		t.Errorf("F1 = %f", m.F1())
	}
}

func TestMatchWrongLabelIsFPAndFN(t *testing.T) {
	truth := []core.Object{obj(1, core.ClassCar, 10, 10, 20, 10)}
	dets := []core.Detection{det(core.ClassTruck, 10, 10, 20, 10, 0.9)}
	m := Match(dets, truth, 0.5)
	if m != (MatchResult{TP: 0, FP: 1, FN: 1}) {
		t.Errorf("Match = %+v", m)
	}
	if m.F1() != 0 {
		t.Errorf("F1 = %f", m.F1())
	}
}

func TestMatchLowIoUIsFP(t *testing.T) {
	truth := []core.Object{obj(1, core.ClassCar, 0, 0, 10, 10)}
	dets := []core.Detection{det(core.ClassCar, 8, 8, 10, 10, 0.9)} // IoU ≈ 0.02
	m := Match(dets, truth, 0.5)
	if m.TP != 0 || m.FP != 1 || m.FN != 1 {
		t.Errorf("Match = %+v", m)
	}
}

func TestMatchGreedyPrefersHighScore(t *testing.T) {
	// Two detections compete for one ground-truth box; the higher-score one
	// must win and the other becomes a false positive.
	truth := []core.Object{obj(1, core.ClassCar, 10, 10, 20, 10)}
	dets := []core.Detection{
		det(core.ClassCar, 11, 10, 20, 10, 0.5),
		det(core.ClassCar, 10, 10, 20, 10, 0.9),
	}
	m := Match(dets, truth, 0.5)
	if m.TP != 1 || m.FP != 1 {
		t.Errorf("Match = %+v", m)
	}
}

func TestMatchEachTruthClaimedOnce(t *testing.T) {
	truth := []core.Object{
		obj(1, core.ClassCar, 0, 0, 10, 10),
		obj(2, core.ClassCar, 30, 0, 10, 10),
	}
	dets := []core.Detection{
		det(core.ClassCar, 0, 0, 10, 10, 0.9),
		det(core.ClassCar, 1, 0, 10, 10, 0.8), // overlaps truth 1 only, already claimed
	}
	m := Match(dets, truth, 0.5)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Errorf("Match = %+v", m)
	}
}

func TestMatchEmptyCases(t *testing.T) {
	// Paper/Glimpse convention: empty-empty frames are perfect.
	if f1 := FrameF1(nil, nil, 0.5); f1 != 1 {
		t.Errorf("empty-empty F1 = %f, want 1", f1)
	}
	if f1 := FrameF1([]core.Detection{det(core.ClassCar, 0, 0, 5, 5, 1)}, nil, 0.5); f1 != 0 {
		t.Errorf("FP-only F1 = %f, want 0", f1)
	}
	if f1 := FrameF1(nil, []core.Object{obj(1, core.ClassCar, 0, 0, 5, 5)}, 0.5); f1 != 0 {
		t.Errorf("FN-only F1 = %f, want 0", f1)
	}
}

func TestMatchDefaultIoU(t *testing.T) {
	truth := []core.Object{obj(1, core.ClassCar, 0, 0, 10, 10)}
	dets := []core.Detection{det(core.ClassCar, 0, 0, 10, 10, 1)}
	if m := Match(dets, truth, 0); m.TP != 1 {
		t.Errorf("zero threshold did not default: %+v", m)
	}
}

func TestStricterIoUReducesTP(t *testing.T) {
	// A detection with IoU ≈ 0.55 passes at threshold 0.5 and fails at 0.6 —
	// the mechanism behind Fig. 11.
	truth := []core.Object{obj(1, core.ClassCar, 0, 0, 20, 10)}
	dets := []core.Detection{det(core.ClassCar, 4.5, 1, 20, 10, 1)}
	iou := dets[0].Box.IoU(truth[0].Box)
	if iou <= 0.5 || iou >= 0.6 {
		t.Fatalf("test fixture IoU = %f, want in (0.5, 0.6)", iou)
	}
	if m := Match(dets, truth, 0.5); m.TP != 1 {
		t.Errorf("IoU 0.5: %+v", m)
	}
	if m := Match(dets, truth, 0.6); m.TP != 0 {
		t.Errorf("IoU 0.6: %+v", m)
	}
}

func TestPrecisionRecallF1Known(t *testing.T) {
	m := MatchResult{TP: 3, FP: 1, FN: 2}
	if p := m.Precision(); math.Abs(p-0.75) > 1e-9 {
		t.Errorf("Precision = %f", p)
	}
	if r := m.Recall(); math.Abs(r-0.6) > 1e-9 {
		t.Errorf("Recall = %f", r)
	}
	want := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if f := m.F1(); math.Abs(f-want) > 1e-9 {
		t.Errorf("F1 = %f, want %f", f, want)
	}
}

// Property: F1 is always in [0, 1] and equals 1 iff no errors.
func TestF1Properties(t *testing.T) {
	if err := quick.Check(func(tp, fp, fn uint8) bool {
		m := MatchResult{TP: int(tp), FP: int(fp), FN: int(fn)}
		f := m.F1()
		if f < 0 || f > 1 {
			return false
		}
		if fp == 0 && fn == 0 && f != 1 {
			return false
		}
		if tp == 0 && (fp > 0 || fn > 0) && f != 0 {
			return false
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestVideoAccuracy(t *testing.T) {
	f1s := []float64{0.9, 0.8, 0.6, 0.71, 0.3}
	if got := VideoAccuracy(f1s, 0.7); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("VideoAccuracy = %f, want 0.6", got)
	}
	if got := VideoAccuracy(f1s, 0.75); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("VideoAccuracy(0.75) = %f, want 0.4", got)
	}
	if got := VideoAccuracy(nil, 0.7); got != 0 {
		t.Errorf("empty VideoAccuracy = %f", got)
	}
	// Zero alpha defaults to 0.7.
	if got := VideoAccuracy(f1s, 0); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("default-alpha VideoAccuracy = %f", got)
	}
}

func TestVideoAccuracyMonotoneInAlpha(t *testing.T) {
	s := rng.New(3)
	f1s := make([]float64, 200)
	for i := range f1s {
		f1s[i] = s.Float64()
	}
	prev := 1.1
	for alpha := 0.1; alpha <= 0.9; alpha += 0.1 {
		acc := VideoAccuracy(f1s, alpha)
		if acc > prev {
			t.Fatalf("accuracy increased as alpha tightened: %f -> %f", prev, acc)
		}
		prev = acc
	}
}

func TestMeanStddev(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Mean = %f", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %f", got)
	}
	if got := Stddev([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("Stddev constant = %f", got)
	}
	if got := Stddev([]float64{5}); got != 0 {
		t.Errorf("Stddev single = %f", got)
	}
	if got := Stddev([]float64{0, 2}); math.Abs(got-1) > 1e-9 {
		t.Errorf("Stddev = %f, want 1", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{99, 1},
	}
	for _, cse := range cases {
		if got := c.P(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("P(%f) = %f, want %f", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %f", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %f", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %f", got)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
	empty := NewCDF(nil)
	if empty.P(1) != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty CDF misbehaves")
	}
}

// Property: CDF is monotone non-decreasing.
func TestCDFMonotone(t *testing.T) {
	s := rng.New(5)
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = s.Range(-10, 10)
	}
	c := NewCDF(samples)
	prev := -0.1
	for x := -12.0; x <= 12; x += 0.25 {
		p := c.P(x)
		if p < prev {
			t.Fatalf("CDF decreased at %f: %f -> %f", x, prev, p)
		}
		prev = p
	}
}

func TestNewCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("NewCDF sorted the caller's slice")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.5, 1.5, 2.5, 9, -5}, 0, 3, 3)
	if h[0] != 3 { // 0, 0.5 and the clamped -5
		t.Errorf("bin 0 = %d", h[0])
	}
	if h[1] != 1 || h[2] != 2 { // 1.5 | 2.5 and clamped 9
		t.Errorf("bins = %v", h)
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Error("zero bins should return nil")
	}
	degenerate := Histogram([]float64{1, 2}, 5, 5, 4)
	if degenerate[0] != 2 {
		t.Errorf("degenerate range histogram = %v", degenerate)
	}
}

func BenchmarkMatch10(b *testing.B) {
	s := rng.New(9)
	var truth []core.Object
	var dets []core.Detection
	for i := 0; i < 10; i++ {
		l, tp := s.Range(0, 300), s.Range(0, 160)
		truth = append(truth, obj(i+1, core.ClassCar, l, tp, 20, 12))
		dets = append(dets, det(core.ClassCar, l+s.Range(-2, 2), tp+s.Range(-2, 2), 20, 12, s.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Match(dets, truth, 0.5)
	}
}
