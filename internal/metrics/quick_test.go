package metrics

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adavp/internal/core"
	"adavp/internal/geom"
)

// frameCase is one generated matching problem: a frame's detections and
// ground truth on a small 20×20 grid (so overlaps are common), plus two
// positive IoU thresholds.
type frameCase struct {
	Dets             []core.Detection
	Truth            []core.Object
	Thresh1, Thresh2 float64
}

func randBox(rng *rand.Rand) geom.Rect {
	return geom.Rect{
		Left: float64(rng.Intn(20)), Top: float64(rng.Intn(20)),
		W: float64(rng.Intn(10)), H: float64(rng.Intn(10)),
	}
}

// Generate implements quick.Generator.
func (frameCase) Generate(rng *rand.Rand, size int) reflect.Value {
	if size > 12 {
		size = 12
	}
	fc := frameCase{
		Thresh1: 0.01 + 0.99*rng.Float64(),
		Thresh2: 0.01 + 0.99*rng.Float64(),
	}
	for i, n := 0, rng.Intn(size+1); i < n; i++ {
		fc.Dets = append(fc.Dets, core.Detection{
			Class: core.Class(rng.Intn(3)), Box: randBox(rng), Score: rng.Float64(),
		})
	}
	for i, n := 0, rng.Intn(size+1); i < n; i++ {
		fc.Truth = append(fc.Truth, core.Object{
			ID: i, Class: core.Class(rng.Intn(3)), Box: randBox(rng),
		})
	}
	return reflect.ValueOf(fc)
}

var quickCfg = &quick.Config{MaxCount: 2000}

// TestMatchCountInvariants: every detection is exactly one of TP/FP and
// every ground-truth object exactly one of TP/FN, at any threshold.
func TestMatchCountInvariants(t *testing.T) {
	prop := func(fc frameCase) bool {
		m := Match(fc.Dets, fc.Truth, fc.Thresh1)
		return m.TP >= 0 && m.FP >= 0 && m.FN >= 0 &&
			m.TP+m.FP == len(fc.Dets) &&
			m.TP+m.FN == len(fc.Truth)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestIoUSymmetry: IoU is symmetric and confined to [0, 1].
func TestIoUSymmetry(t *testing.T) {
	prop := func(fc frameCase) bool {
		for _, d := range fc.Dets {
			for _, g := range fc.Truth {
				ab := d.Box.IoU(g.Box)
				ba := g.Box.IoU(d.Box)
				if ab != ba || ab < 0 || ab > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestF1MonotoneInIoUThreshold: raising the IoU threshold can only remove
// matches, never add them, so F1 is weakly decreasing in the threshold.
// (Since F1 = 2·TP/(len(dets)+len(truth)) with fixed denominators, this is
// equivalent to greedy TP being weakly decreasing — the matched-truth set at
// the stricter threshold stays a subset of the laxer one's.)
func TestF1MonotoneInIoUThreshold(t *testing.T) {
	prop := func(fc frameCase) bool {
		lo, hi := fc.Thresh1, fc.Thresh2
		if lo > hi {
			lo, hi = hi, lo
		}
		return FrameF1(fc.Dets, fc.Truth, lo) >= FrameF1(fc.Dets, fc.Truth, hi)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestMatchRespectsClass: a detection never claims a ground-truth object of
// a different class, even with identical boxes.
func TestMatchRespectsClass(t *testing.T) {
	prop := func(fc frameCase) bool {
		onlyA := make([]core.Detection, 0, len(fc.Dets))
		for _, d := range fc.Dets {
			d.Class = 0
			onlyA = append(onlyA, d)
		}
		onlyB := make([]core.Object, 0, len(fc.Truth))
		for _, g := range fc.Truth {
			g.Class = 1
			onlyB = append(onlyB, g)
		}
		m := Match(onlyA, onlyB, fc.Thresh1)
		return m.TP == 0 && m.FP == len(onlyA) && m.FN == len(onlyB)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
