package metrics

import (
	"fmt"
	"io"
	"sort"

	"adavp/internal/core"
)

// ClassReport aggregates matching outcomes per object class across many
// frames — the standard per-category evaluation view. It distinguishes the
// two failure modes the paper's detector analysis cares about: objects
// missed entirely versus objects found but mislabeled (Fig. 5's car/truck
// confusions).
type ClassReport struct {
	perClass map[core.Class]*classCounts
}

type classCounts struct {
	tp, fn int // ground-truth side
	fp     int // detection side
	// mislabeled counts ground-truth objects that overlapped a detection of
	// the wrong class (a subset of fn on the truth side).
	mislabeled int
}

// NewClassReport returns an empty report.
func NewClassReport() *ClassReport {
	return &ClassReport{perClass: make(map[core.Class]*classCounts)}
}

// Add matches one frame and folds the outcome into the report.
func (r *ClassReport) Add(dets []core.Detection, truth []core.Object, iouThresh float64) {
	if iouThresh <= 0 {
		iouThresh = DefaultIoU
	}
	matchedDet := make([]bool, len(dets))
	for _, g := range truth {
		c := r.counts(g.Class)
		// Same-class match?
		found := false
		for di, d := range dets {
			if matchedDet[di] || d.Class != g.Class {
				continue
			}
			if d.Box.IoU(g.Box) >= iouThresh {
				matchedDet[di] = true
				found = true
				break
			}
		}
		if found {
			c.tp++
			continue
		}
		c.fn++
		// Wrong-label overlap?
		for _, d := range dets {
			if d.Class != g.Class && d.Box.IoU(g.Box) >= iouThresh {
				c.mislabeled++
				break
			}
		}
	}
	for di, d := range dets {
		if !matchedDet[di] {
			r.counts(d.Class).fp++
		}
	}
}

func (r *ClassReport) counts(c core.Class) *classCounts {
	cc, ok := r.perClass[c]
	if !ok {
		cc = &classCounts{}
		r.perClass[c] = cc
	}
	return cc
}

// Row is one class's aggregated result.
type Row struct {
	Class      core.Class
	TP, FP, FN int
	// Mislabeled is the number of missed ground-truth objects that a
	// wrong-class detection overlapped.
	Mislabeled int
	Precision  float64
	Recall     float64
	F1         float64
}

// Rows returns the per-class results for classes with any ground truth or
// detections, sorted by class.
func (r *ClassReport) Rows() []Row {
	classes := make([]core.Class, 0, len(r.perClass))
	for c := range r.perClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	out := make([]Row, 0, len(classes))
	for _, c := range classes {
		cc := r.perClass[c]
		m := MatchResult{TP: cc.tp, FP: cc.fp, FN: cc.fn}
		out = append(out, Row{
			Class: c, TP: cc.tp, FP: cc.fp, FN: cc.fn, Mislabeled: cc.mislabeled,
			Precision: m.Precision(), Recall: m.Recall(), F1: m.F1(),
		})
	}
	return out
}

// Print writes the report as an aligned table.
func (r *ClassReport) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %6s %6s %6s %10s %10s %8s %8s\n",
		"class", "TP", "FP", "FN", "mislabeled", "precision", "recall", "F1"); err != nil {
		return err
	}
	for _, row := range r.Rows() {
		if _, err := fmt.Fprintf(w, "%-12s %6d %6d %6d %10d %10.3f %8.3f %8.3f\n",
			row.Class, row.TP, row.FP, row.FN, row.Mislabeled, row.Precision, row.Recall, row.F1); err != nil {
			return err
		}
	}
	return nil
}
