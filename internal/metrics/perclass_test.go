package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adavp/internal/core"
)

func TestClassReportBasic(t *testing.T) {
	r := NewClassReport()
	truth := []core.Object{
		obj(1, core.ClassCar, 0, 0, 20, 10),
		obj(2, core.ClassPerson, 50, 0, 8, 20),
	}
	dets := []core.Detection{
		det(core.ClassCar, 0, 0, 20, 10, 0.9),     // TP for car
		det(core.ClassDog, 100, 100, 10, 10, 0.5), // FP for dog
	}
	r.Add(dets, truth, 0.5)
	rows := r.Rows()
	byClass := map[core.Class]Row{}
	for _, row := range rows {
		byClass[row.Class] = row
	}
	if got := byClass[core.ClassCar]; got.TP != 1 || got.FP != 0 || got.FN != 0 {
		t.Errorf("car = %+v", got)
	}
	if got := byClass[core.ClassPerson]; got.FN != 1 || got.Mislabeled != 0 {
		t.Errorf("person = %+v", got)
	}
	if got := byClass[core.ClassDog]; got.FP != 1 {
		t.Errorf("dog = %+v", got)
	}
}

func TestClassReportMislabeled(t *testing.T) {
	// A truck detected where a car sits: car FN+mislabeled, truck FP —
	// the Fig. 5 confusion signature.
	r := NewClassReport()
	truth := []core.Object{obj(1, core.ClassCar, 0, 0, 20, 10)}
	dets := []core.Detection{det(core.ClassTruck, 0, 0, 20, 10, 0.9)}
	r.Add(dets, truth, 0.5)
	byClass := map[core.Class]Row{}
	for _, row := range r.Rows() {
		byClass[row.Class] = row
	}
	if got := byClass[core.ClassCar]; got.FN != 1 || got.Mislabeled != 1 {
		t.Errorf("car = %+v", got)
	}
	if got := byClass[core.ClassTruck]; got.FP != 1 {
		t.Errorf("truck = %+v", got)
	}
}

func TestClassReportAccumulatesFrames(t *testing.T) {
	r := NewClassReport()
	truth := []core.Object{obj(1, core.ClassCar, 0, 0, 20, 10)}
	dets := []core.Detection{det(core.ClassCar, 0, 0, 20, 10, 0.9)}
	for i := 0; i < 5; i++ {
		r.Add(dets, truth, 0.5)
	}
	rows := r.Rows()
	if len(rows) != 1 || rows[0].TP != 5 {
		t.Errorf("rows = %+v", rows)
	}
	if math.Abs(rows[0].F1-1) > 1e-9 {
		t.Errorf("F1 = %f", rows[0].F1)
	}
}

func TestClassReportRowsSorted(t *testing.T) {
	r := NewClassReport()
	r.Add([]core.Detection{det(core.ClassSkater, 0, 0, 5, 5, 1)}, nil, 0.5)
	r.Add([]core.Detection{det(core.ClassCar, 0, 0, 5, 5, 1)}, nil, 0.5)
	rows := r.Rows()
	if len(rows) != 2 || rows[0].Class != core.ClassCar {
		t.Errorf("rows = %+v", rows)
	}
}

func TestClassReportDefaultIoU(t *testing.T) {
	r := NewClassReport()
	r.Add([]core.Detection{det(core.ClassCar, 0, 0, 20, 10, 1)},
		[]core.Object{obj(1, core.ClassCar, 0, 0, 20, 10)}, 0)
	if rows := r.Rows(); rows[0].TP != 1 {
		t.Errorf("zero IoU threshold did not default: %+v", rows)
	}
}

func TestClassReportPrint(t *testing.T) {
	r := NewClassReport()
	r.Add([]core.Detection{det(core.ClassCar, 0, 0, 20, 10, 1)},
		[]core.Object{obj(1, core.ClassCar, 0, 0, 20, 10)}, 0.5)
	var buf bytes.Buffer
	if err := r.Print(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "car") {
		t.Error("report missing class row")
	}
}
