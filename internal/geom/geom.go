// Package geom provides the 2-D geometric primitives used throughout AdaVP:
// points, axis-aligned rectangles, and the intersection-over-union measure
// that the paper uses to match detections against ground truth (Eq. 2).
//
// Rectangles follow the paper's bounding-box convention: a 4-tuple
// (left, top, width, height) in continuous pixel coordinates, with the origin
// at the top-left corner of the frame and y growing downward.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in continuous pixel coordinates.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Rect is an axis-aligned bounding box (left, top, width, height).
// A Rect with W <= 0 or H <= 0 is empty.
type Rect struct {
	Left, Top, W, H float64
}

// RectFromCenter builds a rectangle centered at c with the given size.
func RectFromCenter(c Point, w, h float64) Rect {
	return Rect{Left: c.X - w/2, Top: c.Y - h/2, W: w, H: h}
}

// RectFromCorners builds the rectangle spanning two opposite corners.
func RectFromCorners(a, b Point) Rect {
	left := math.Min(a.X, b.X)
	top := math.Min(a.Y, b.Y)
	return Rect{Left: left, Top: top, W: math.Abs(a.X - b.X), H: math.Abs(a.Y - b.Y)}
}

// Right returns the x coordinate of the right edge.
func (r Rect) Right() float64 { return r.Left + r.W }

// Bottom returns the y coordinate of the bottom edge.
func (r Rect) Bottom() float64 { return r.Top + r.H }

// Center returns the rectangle's center point.
func (r Rect) Center() Point { return Point{r.Left + r.W/2, r.Top + r.H/2} }

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns the rectangle's area, or 0 if it is empty.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// Translate returns r shifted by the vector d.
func (r Rect) Translate(d Point) Rect {
	r.Left += d.X
	r.Top += d.Y
	return r
}

// ScaleAboutCenter returns r with width and height multiplied by s, keeping
// the center fixed.
func (r Rect) ScaleAboutCenter(s float64) Rect {
	return RectFromCenter(r.Center(), r.W*s, r.H*s)
}

// Scale returns r with all coordinates multiplied by s (a resolution change).
func (r Rect) Scale(s float64) Rect {
	return Rect{Left: r.Left * s, Top: r.Top * s, W: r.W * s, H: r.H * s}
}

// Contains reports whether the point p lies inside r (inclusive of the left
// and top edges, exclusive of the right and bottom edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Left && p.X < r.Right() && p.Y >= r.Top && p.Y < r.Bottom()
}

// Intersect returns the intersection of r and q, or an empty Rect if the two
// do not overlap.
func (r Rect) Intersect(q Rect) Rect {
	left := math.Max(r.Left, q.Left)
	top := math.Max(r.Top, q.Top)
	right := math.Min(r.Right(), q.Right())
	bottom := math.Min(r.Bottom(), q.Bottom())
	if right <= left || bottom <= top {
		return Rect{}
	}
	return Rect{Left: left, Top: top, W: right - left, H: bottom - top}
}

// Union returns the smallest rectangle containing both r and q. If either is
// empty the other is returned.
func (r Rect) Union(q Rect) Rect {
	if r.Empty() {
		return q
	}
	if q.Empty() {
		return r
	}
	left := math.Min(r.Left, q.Left)
	top := math.Min(r.Top, q.Top)
	right := math.Max(r.Right(), q.Right())
	bottom := math.Max(r.Bottom(), q.Bottom())
	return Rect{Left: left, Top: top, W: right - left, H: bottom - top}
}

// Clip returns r clipped to the bounds rectangle.
func (r Rect) Clip(bounds Rect) Rect { return r.Intersect(bounds) }

// IoU returns the intersection-over-union of r and q (Eq. 2 in the paper):
//
//	IoU = area(r ∩ q) / area(r ∪ q)
//
// where the union area is computed as area(r) + area(q) - area(r ∩ q).
// The result is in [0, 1]; two empty rectangles have IoU 0.
func (r Rect) IoU(q Rect) float64 {
	inter := r.Intersect(q).Area()
	if inter <= 0 {
		return 0
	}
	union := r.Area() + q.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f %.1f %.1fx%.1f]", r.Left, r.Top, r.W, r.H)
}
