package geom

import (
	"math"
	"testing"
	"testing/quick"

	"adavp/internal/rng"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); !almostEqual(got, 5) {
		t.Errorf("Norm = %f", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Errorf("Dist(self) = %f", got)
	}
}

func TestRectAccessors(t *testing.T) {
	r := Rect{Left: 10, Top: 20, W: 30, H: 40}
	if got := r.Right(); got != 40 {
		t.Errorf("Right = %f", got)
	}
	if got := r.Bottom(); got != 60 {
		t.Errorf("Bottom = %f", got)
	}
	if got := r.Center(); got != (Point{25, 40}) {
		t.Errorf("Center = %v", got)
	}
	if got := r.Area(); got != 1200 {
		t.Errorf("Area = %f", got)
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Point{10, 10}, 4, 6)
	if r.Left != 8 || r.Top != 7 || r.W != 4 || r.H != 6 {
		t.Errorf("RectFromCenter = %v", r)
	}
	if got := r.Center(); got != (Point{10, 10}) {
		t.Errorf("Center = %v", got)
	}
}

func TestRectFromCorners(t *testing.T) {
	r := RectFromCorners(Point{5, 8}, Point{1, 2})
	if r.Left != 1 || r.Top != 2 || r.W != 4 || r.H != 6 {
		t.Errorf("RectFromCorners = %v", r)
	}
}

func TestEmpty(t *testing.T) {
	for _, r := range []Rect{{}, {W: -1, H: 5}, {W: 5, H: 0}} {
		if !r.Empty() {
			t.Errorf("%v should be empty", r)
		}
		if r.Area() != 0 {
			t.Errorf("%v area should be 0", r)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := Rect{Left: 0, Top: 0, W: 10, H: 10}
	b := Rect{Left: 5, Top: 5, W: 10, H: 10}
	got := a.Intersect(b)
	want := Rect{Left: 5, Top: 5, W: 5, H: 5}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	// Disjoint rectangles intersect to empty.
	c := Rect{Left: 100, Top: 100, W: 5, H: 5}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection not empty")
	}
	// Touching edges do not overlap.
	d := Rect{Left: 10, Top: 0, W: 5, H: 10}
	if !a.Intersect(d).Empty() {
		t.Error("edge-touching intersection not empty")
	}
}

func TestUnion(t *testing.T) {
	a := Rect{Left: 0, Top: 0, W: 2, H: 2}
	b := Rect{Left: 5, Top: 5, W: 2, H: 2}
	got := a.Union(b)
	want := Rect{Left: 0, Top: 0, W: 7, H: 7}
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty Union = %v", got)
	}
}

func TestContains(t *testing.T) {
	r := Rect{Left: 0, Top: 0, W: 10, H: 10}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},
		{Point{10, 5}, false}, // right edge exclusive
		{Point{5, 10}, false}, // bottom edge exclusive
		{Point{-1, 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %t, want %t", c.p, got, c.want)
		}
	}
}

func TestIoUKnownValues(t *testing.T) {
	a := Rect{Left: 0, Top: 0, W: 10, H: 10}
	cases := []struct {
		name string
		b    Rect
		want float64
	}{
		{"identical", a, 1},
		{"disjoint", Rect{Left: 20, Top: 20, W: 10, H: 10}, 0},
		{"half overlap", Rect{Left: 0, Top: 5, W: 10, H: 10}, 50.0 / 150.0},
		{"contained quarter", Rect{Left: 0, Top: 0, W: 5, H: 5}, 0.25},
		{"empty", Rect{}, 0},
	}
	for _, c := range cases {
		if got := a.IoU(c.b); !almostEqual(got, c.want) {
			t.Errorf("%s: IoU = %f, want %f", c.name, got, c.want)
		}
	}
}

func randRect(s *rng.Stream) Rect {
	return Rect{
		Left: s.Range(-50, 50),
		Top:  s.Range(-50, 50),
		W:    s.Range(0.1, 60),
		H:    s.Range(0.1, 60),
	}
}

// Property: IoU is symmetric, bounded in [0,1], and 1 only for r == r.
func TestIoUProperties(t *testing.T) {
	s := rng.New(101)
	for i := 0; i < 5000; i++ {
		a := randRect(s)
		b := randRect(s)
		ab := a.IoU(b)
		ba := b.IoU(a)
		if !almostEqual(ab, ba) {
			t.Fatalf("IoU not symmetric: %f vs %f for %v, %v", ab, ba, a, b)
		}
		if ab < 0 || ab > 1+1e-12 {
			t.Fatalf("IoU out of range: %f", ab)
		}
		if !almostEqual(a.IoU(a), 1) {
			t.Fatalf("IoU(a,a) = %f for %v", a.IoU(a), a)
		}
	}
}

// Property: intersection is contained in both, union contains both.
func TestIntersectUnionProperties(t *testing.T) {
	s := rng.New(103)
	for i := 0; i < 5000; i++ {
		a := randRect(s)
		b := randRect(s)
		inter := a.Intersect(b)
		if !inter.Empty() {
			if inter.Area() > a.Area()+1e-9 || inter.Area() > b.Area()+1e-9 {
				t.Fatalf("intersection larger than operand: %v %v -> %v", a, b, inter)
			}
		}
		u := a.Union(b)
		if u.Area()+1e-9 < a.Area() || u.Area()+1e-9 < b.Area() {
			t.Fatalf("union smaller than operand: %v %v -> %v", a, b, u)
		}
		// Inclusion–exclusion bound: |a∪b| <= |a| + |b| (bounding box may exceed
		// the true union only when boxes are disjoint, but never the sum of the
		// spanning box sides... check the true-union inequality instead).
		if inter.Area() > math.Min(a.Area(), b.Area())+1e-9 {
			t.Fatalf("intersection exceeds min area")
		}
	}
}

func TestTranslateScale(t *testing.T) {
	r := Rect{Left: 1, Top: 2, W: 3, H: 4}
	got := r.Translate(Point{10, 20})
	if got != (Rect{Left: 11, Top: 22, W: 3, H: 4}) {
		t.Errorf("Translate = %v", got)
	}
	sc := r.Scale(2)
	if sc != (Rect{Left: 2, Top: 4, W: 6, H: 8}) {
		t.Errorf("Scale = %v", sc)
	}
	sac := Rect{Left: 0, Top: 0, W: 4, H: 4}.ScaleAboutCenter(0.5)
	if sac != (Rect{Left: 1, Top: 1, W: 2, H: 2}) {
		t.Errorf("ScaleAboutCenter = %v", sac)
	}
}

// Property: translation preserves IoU.
func TestIoUTranslationInvariant(t *testing.T) {
	if err := quick.Check(func(dx, dy float64) bool {
		if math.IsNaN(dx) || math.IsInf(dx, 0) || math.Abs(dx) > 1e6 {
			dx = 1
		}
		if math.IsNaN(dy) || math.IsInf(dy, 0) || math.Abs(dy) > 1e6 {
			dy = 1
		}
		a := Rect{Left: 0, Top: 0, W: 10, H: 10}
		b := Rect{Left: 3, Top: 4, W: 8, H: 6}
		d := Point{dx, dy}
		return math.Abs(a.IoU(b)-a.Translate(d).IoU(b.Translate(d))) < 1e-6
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestClip(t *testing.T) {
	bounds := Rect{Left: 0, Top: 0, W: 100, H: 100}
	r := Rect{Left: -10, Top: 50, W: 30, H: 80}
	got := r.Clip(bounds)
	want := Rect{Left: 0, Top: 50, W: 20, H: 50}
	if got != want {
		t.Errorf("Clip = %v, want %v", got, want)
	}
}

func TestStrings(t *testing.T) {
	// Exercise the Stringer implementations for coverage of formatting paths.
	if s := (Point{1, 2}).String(); s == "" {
		t.Error("empty Point string")
	}
	if s := (Rect{1, 2, 3, 4}).String(); s == "" {
		t.Error("empty Rect string")
	}
}

func BenchmarkIoU(b *testing.B) {
	r1 := Rect{Left: 0, Top: 0, W: 10, H: 10}
	r2 := Rect{Left: 5, Top: 5, W: 10, H: 10}
	for i := 0; i < b.N; i++ {
		_ = r1.IoU(r2)
	}
}
