package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"adavp/internal/obs"
)

// ErrQueueFull is the backpressure signal: the pool's wait queue is at its
// bound, so the request was refused rather than queued. The stream keeps
// tracking against its previous calibration and re-requests on a later frame.
var ErrQueueFull = errors.New("serve: detector wait queue full")

// Pool is the live K-slot detector pool: rt detector threads acquire a slot
// before every inference and release it after. Waiting is bounded (FairQueue)
// and served oldest-calibration-first, so no stream starves and a burst of
// requests costs queue entries, not memory. Pool implements rt.DetectorSlots.
//
// The pool itself never reads a clock: grant order derives entirely from the
// calibration timestamps callers pass in, and slot-wait time is measured by
// the callers around Acquire.
type Pool struct {
	reg *obs.Registry

	mu      sync.Mutex
	slots   int
	free    int
	queue   *FairQueue
	nextID  int
	waiters map[int]*waiter
}

// waiter is one blocked Acquire.
type waiter struct {
	ch        chan struct{} // buffered(1); receives the grant
	cancelled bool          // abandoned by context; skipped when popped
	granted   bool
}

// NewPool builds a pool of `slots` detector slots (clamped to ≥ 1) whose
// wait queue admits at most queueBound requests (clamped to ≥ 1). A non-nil
// registry receives the aggregate queue-depth gauge.
func NewPool(slots, queueBound int, reg *obs.Registry) *Pool {
	if slots < 1 {
		slots = 1
	}
	return &Pool{
		reg:     reg,
		slots:   slots,
		free:    slots,
		queue:   NewFairQueue(queueBound),
		waiters: make(map[int]*waiter),
	}
}

// Slots returns K, the number of concurrent detector slots.
func (p *Pool) Slots() int { return p.slots }

// QueueDepth returns the current number of waiting requests (including
// requests whose callers have since been cancelled but not yet skipped).
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queue.Len()
}

// publishDepth mirrors the queue depth into the registry; callers hold p.mu.
func (p *Pool) publishDepth() {
	if p.reg != nil {
		p.reg.Gauge(obs.MetricQueueDepth).Set(float64(p.queue.Len()))
	}
}

// Acquire implements rt.DetectorSlots: it blocks until a detector slot is
// granted or ctx is cancelled. When the wait queue is full it fails fast
// with ErrQueueFull instead of queueing — the backpressure contract.
func (p *Pool) Acquire(ctx context.Context, stream string, lastCalib time.Duration) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.free > 0 {
		// Invariant: a free slot implies an empty queue (release grants
		// waiters before freeing), so taking it immediately cannot overtake
		// an older waiter.
		p.free--
		p.mu.Unlock()
		return p.releaseFunc(), nil
	}
	id := p.nextID
	p.nextID++
	if !p.queue.Push(Request{Stream: stream, Index: id, LastCalib: lastCalib}) {
		p.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{ch: make(chan struct{}, 1)}
	p.waiters[id] = w
	p.publishDepth()
	p.mu.Unlock()

	select {
	case <-w.ch:
		return p.releaseFunc(), nil
	case <-ctx.Done():
		p.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the slot is ours, hand it
			// straight back so it is not leaked.
			p.mu.Unlock()
			p.releaseFunc()()
			return nil, ctx.Err()
		}
		w.cancelled = true
		p.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseFunc returns the single-use release callback for a granted slot.
func (p *Pool) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			// Hand the slot to the oldest-calibration waiter, skipping
			// entries whose callers have been cancelled meanwhile.
			for {
				req, ok := p.queue.Pop()
				if !ok {
					p.free++
					break
				}
				w := p.waiters[req.Index]
				delete(p.waiters, req.Index)
				if w == nil || w.cancelled {
					continue
				}
				w.granted = true
				w.ch <- struct{}{}
				break
			}
			p.publishDepth()
			p.mu.Unlock()
		})
	}
}
