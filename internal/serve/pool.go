package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"adavp/internal/core"
	"adavp/internal/obs"
)

// ErrQueueFull is the backpressure signal: the pool's wait queue is at its
// bound, so the request was refused rather than queued. The stream keeps
// tracking against its previous calibration and re-requests on a later frame.
var ErrQueueFull = errors.New("serve: detector wait queue full")

// Pool is the live K-slot batching detector executor: rt detector threads
// acquire a slot before every inference and release it after. Waiting is
// bounded (FairQueue) and served oldest-calibration-first; each slot grant
// drains up to Batch.Size compatible requests (same model setting) from the
// queue and grants them together — the members run their inferences
// concurrently as one fused batch, and the slot frees when the last member
// releases. Pool implements rt.DetectorSlots.
//
// The pool itself never reads a clock: grant order derives entirely from the
// calibration timestamps callers pass in, and slot-wait/execution times are
// measured by the callers around Acquire and release. That also means the
// live pool is work-conserving — it cannot honor BatchConfig.Linger (a fill
// timeout needs a clock) and instead fuses whatever compatible prefix is
// queued at release time; the virtual-clock scheduler and the load generator
// model lingering exactly.
type Pool struct {
	reg   *obs.Registry
	batch BatchConfig
	stats Stats

	mu      sync.Mutex
	slots   int
	free    int
	queue   *FairQueue
	nextID  int
	waiters map[int]*waiter
}

// waiter is one blocked Acquire.
type waiter struct {
	ch        chan struct{} // buffered(1); receives the grant
	cancelled bool          // abandoned by context; skipped when popped
	granted   bool
	g         *group // the grant group; set under p.mu before the grant signal
}

// group tracks one slot grant shared by a drained batch: the slot is handed
// on (or freed) only when the last member releases.
type group struct {
	pending int
}

// NewPool builds a non-batching pool of `slots` detector slots (clamped to
// ≥ 1) whose wait queue admits at most queueBound requests (clamped to ≥ 1):
// every grant serves exactly one request, the pre-batching behavior. A
// non-nil registry receives the aggregate queue-depth gauge and the
// batch-size histogram.
func NewPool(slots, queueBound int, reg *obs.Registry) *Pool {
	return NewBatchPool(slots, queueBound, BatchConfig{Size: 1}, reg)
}

// NewBatchPool builds a batching pool: each slot grant drains up to
// batch.Size compatible requests and grants them as one fused inference.
func NewBatchPool(slots, queueBound int, batch BatchConfig, reg *obs.Registry) *Pool {
	if slots < 1 {
		slots = 1
	}
	return &Pool{
		reg:     reg,
		batch:   batch.withDefaults(),
		slots:   slots,
		free:    slots,
		queue:   NewFairQueue(queueBound),
		waiters: make(map[int]*waiter),
	}
}

// Slots returns K, the number of concurrent detector slots.
func (p *Pool) Slots() int { return p.slots }

// Batch returns the pool's batching configuration (Size ≥ 1).
func (p *Pool) Batch() BatchConfig { return p.batch }

// Stats reads the per-stage pipeline counters.
func (p *Pool) Stats() StatsSnapshot { return p.stats.Snapshot() }

// QueueDepth returns the current number of waiting requests (including
// requests whose callers have since been cancelled but not yet skipped).
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queue.Len()
}

// publishDepth mirrors the queue depth into the registry; callers hold p.mu.
func (p *Pool) publishDepth() {
	if p.reg != nil {
		p.reg.Gauge(obs.MetricQueueDepth).Set(float64(p.queue.Len()))
	}
}

// observeBatch accounts one slot grant fusing n requests; callers hold p.mu.
func (p *Pool) observeBatch(n int) {
	p.stats.noteBatch(n)
	if p.reg != nil {
		p.reg.Histogram(obs.MetricBatchSize, obs.BatchSizeBuckets).Observe(float64(n))
	}
}

// Acquire implements rt.DetectorSlots: it blocks until a detector slot is
// granted or ctx is cancelled. setting is the batch compatibility key — the
// model setting the caller holds when it requests (its post-grant adaptation
// may still switch; batches are compatible at grant time). When the wait
// queue is full it fails fast with ErrQueueFull instead of queueing — the
// backpressure contract.
func (p *Pool) Acquire(ctx context.Context, stream string, setting core.Setting, lastCalib time.Duration) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.stats.admitted.Add(1)
	p.mu.Lock()
	if p.free > 0 {
		// Invariant: a free slot implies an empty queue (release grants
		// waiters before freeing), so taking it immediately cannot overtake
		// an older waiter. An immediate grant is a singleton batch. The
		// release closure re-enters p.mu when invoked, so it is built after
		// the unlock; the group is still private to this caller.
		p.free--
		p.observeBatch(1)
		p.mu.Unlock()
		return p.memberRelease(&group{pending: 1}), nil
	}
	id := p.nextID
	p.nextID++
	if !p.queue.Push(Request{Stream: stream, Index: id, Setting: setting, LastCalib: lastCalib}) {
		p.mu.Unlock()
		p.stats.refused.Add(1)
		return nil, ErrQueueFull
	}
	w := &waiter{ch: make(chan struct{}, 1)}
	p.waiters[id] = w
	p.stats.queued.Add(1)
	p.publishDepth()
	p.mu.Unlock()

	select {
	case <-w.ch:
		// w.g was written under p.mu before the grant signal; the channel
		// receive orders the read after it. Each member builds its own
		// release closure here, outside the lock — the grant path under
		// p.mu only does bookkeeping and channel sends.
		return p.memberRelease(w.g), nil
	case <-ctx.Done():
		p.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the slot share is ours, hand
			// it straight back so the group is not leaked.
			g := w.g
			p.mu.Unlock()
			p.memberRelease(g)()
			return nil, ctx.Err()
		}
		w.cancelled = true
		p.stats.cancelled.Add(1)
		p.mu.Unlock()
		return nil, ctx.Err()
	}
}

// memberRelease returns the single-use release callback for one member of a
// grant group. The slot moves on only when the whole group has released.
// Callers must NOT hold p.mu: the returned closure re-enters it, and building
// it outside the lock is what keeps the grant/release cycle free of
// lock-under-lock shapes (the lockorder analyzer checks this).
func (p *Pool) memberRelease(g *group) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.stats.noteRelease()
			g.pending--
			if g.pending == 0 {
				p.grantNextLocked()
				p.publishDepth()
			}
			p.mu.Unlock()
		})
	}
}

// grantNextLocked hands the freed slot to the next batch: it drains up to
// Batch.Size compatible requests in oldest-calibration-first order and grants
// them as one group, or marks the slot free when nothing waits. Entries whose
// callers have been cancelled meanwhile are dropped inside the drain itself
// (PopBatchFunc's skip predicate), so they neither consume batch capacity nor
// terminate the scan — the batch fills to Size from live waiters whenever
// enough compatible ones are queued. Callers hold p.mu.
func (p *Pool) grantNextLocked() {
	reqs := p.queue.PopBatchFunc(p.batch.Size, func(r Request) bool {
		w := p.waiters[r.Index]
		if w == nil || w.cancelled {
			delete(p.waiters, r.Index)
			return true
		}
		return false
	})
	if len(reqs) == 0 {
		p.free++
		return
	}
	g := &group{pending: len(reqs)}
	grantees := make([]*waiter, 0, len(reqs))
	for _, req := range reqs {
		w := p.waiters[req.Index]
		delete(p.waiters, req.Index)
		w.granted = true
		w.g = g
		grantees = append(grantees, w)
	}
	p.observeBatch(g.pending)
	for _, w := range grantees {
		w.ch <- struct{}{}
	}
}
