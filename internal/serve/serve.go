package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"adavp/internal/guard"
	"adavp/internal/obs"
	"adavp/internal/rt"
	"adavp/internal/video"
)

// StreamSpec describes one live stream: an input video plus its pipeline
// configuration. Each stream gets its own tracker, adaptation state, guard
// supervisor, fault schedule and seed — only the detector slots, the
// escalation budget and the observability registry are shared.
type StreamSpec struct {
	// ID names the stream; required, unique per run. Labels every published
	// series (stream=<id>).
	ID string
	// Video is the stream's input; required.
	Video *video.Video
	// Config is the stream's rt pipeline configuration. Obs, StreamID,
	// Slots and Guard.Budget are overridden by the runner.
	Config rt.Config
}

// RunConfig parameterizes the shared serving layer.
type RunConfig struct {
	// Slots is K, the number of concurrent detector slots shared by all
	// streams. Default 1.
	Slots int
	// QueueBound caps the detector wait queue; a stream that cannot enqueue
	// skips the detection and keeps tracking (backpressure). Default: the
	// number of streams, which never refuses.
	QueueBound int
	// Batch configures the batching executor: each slot grant drains up to
	// Batch.Size compatible requests (same model setting) from the wait queue
	// and runs them as one fused inference. The zero value (Size 0 → 1) is
	// the pre-batching one-request-per-grant pool. The live pool is
	// work-conserving and ignores Batch.Linger (serve owns no clock).
	Batch BatchConfig
	// MaxStreams is the admission-control cap: stream sets larger than this
	// are rejected up front. 0 means unlimited.
	MaxStreams int
	// DowngradeBudget bounds the number of guard fault-escalation downgrades
	// across ALL streams, so a correlated fault burst cannot walk every
	// stream down to the smallest model at once. 0 means unlimited.
	DowngradeBudget int
	// DowngradeRefill, when positive alongside DowngradeBudget, restores one
	// downgrade grant per interval of pipeline time, saturating at the
	// budget — so the system regains escalation headroom once a fault burst
	// ends instead of staying one-shot for the rest of the run.
	DowngradeRefill time.Duration
	// Budget, when set, overrides the internally constructed escalation
	// budget (DowngradeBudget/DowngradeRefill are then ignored). The chaos
	// soak uses this to own one budget across many serving rounds and assert
	// it recovers after fault bursts.
	Budget *guard.EscalationBudget
	// Obs, when set, receives every stream's telemetry (series labeled
	// stream=<id>) plus the aggregate queue-depth gauge and stream count.
	Obs *obs.Registry
	// PipelineDepth is the default per-stream frame-prefetch depth
	// (rt.Config.PipelineDepth) applied to every stream that leaves its own
	// depth zero. With depth > 1 a stream blocked in Pool.Acquire keeps its
	// prefetch stage rendering upcoming frames, so another stream's detect
	// sleep overlaps its builds. Prefetch never touches the pool or the wait
	// queue, so grant order — and the fairness bound — are unchanged. <= 1
	// leaves the streams sequential.
	PipelineDepth int
}

// StreamResult pairs one stream's outcome with any error its pipeline
// returned (a cancelled run carries both: the partial result and the error).
type StreamResult struct {
	ID     string
	Result *rt.Result
	Err    error
}

// RunResult is a completed multi-stream live run, in input-stream order.
type RunResult struct {
	Streams []StreamResult
	// Stats is the pool's final per-stage pipeline accounting
	// (admit → queue → batch → detect → publish).
	Stats StatsSnapshot
}

// Run executes N live streams against K shared detector slots: admission
// control up front, then one supervised rt pipeline per stream, all blocking
// on the same Pool, publishing into the same registry under stream=<id>
// labels, and drawing downgrades from the same escalation budget. It returns
// when every stream has finished (or, under cancellation, drained).
func Run(ctx context.Context, streams []StreamSpec, cfg RunConfig) (*RunResult, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("serve: no streams")
	}
	if cfg.MaxStreams > 0 && len(streams) > cfg.MaxStreams {
		return nil, fmt.Errorf("serve: %d streams exceed the admission cap %d", len(streams), cfg.MaxStreams)
	}
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	bound := cfg.QueueBound
	if bound <= 0 {
		bound = len(streams)
	}
	seen := make(map[string]bool, len(streams))
	for i, s := range streams {
		if s.ID == "" {
			return nil, fmt.Errorf("serve: stream %d: empty ID", i)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("serve: duplicate stream ID %q", s.ID)
		}
		seen[s.ID] = true
		if s.Video == nil || s.Video.NumFrames() == 0 {
			return nil, fmt.Errorf("serve: stream %q: empty video", s.ID)
		}
	}

	budget := cfg.Budget
	if budget == nil && cfg.DowngradeBudget > 0 {
		if cfg.DowngradeRefill > 0 {
			budget = guard.NewEscalationBudgetWithRefill(cfg.DowngradeBudget, cfg.DowngradeRefill)
		} else {
			budget = guard.NewEscalationBudget(cfg.DowngradeBudget)
		}
	}
	if cfg.Obs != nil {
		cfg.Obs.Gauge(obs.MetricStreams).Set(float64(len(streams)))
	}
	pool := NewBatchPool(cfg.Slots, bound, cfg.Batch, cfg.Obs)

	res := &RunResult{Streams: make([]StreamResult, len(streams))}
	var wg sync.WaitGroup
	for i, s := range streams {
		c := s.Config
		c.Obs = cfg.Obs
		c.StreamID = s.ID
		c.Slots = pool
		c.Guard.Budget = budget
		if c.PipelineDepth == 0 {
			c.PipelineDepth = cfg.PipelineDepth
		}
		wg.Add(1)
		//adavp:stage stream
		go func(i int, s StreamSpec, c rt.Config) {
			defer wg.Done()
			r, err := rt.Run(ctx, s.Video, c) //adavp:detrand-ok rt owns the pacing clock; serve's own outputs stay deterministic per stream seed
			res.Streams[i] = StreamResult{ID: s.ID, Result: r, Err: err}
		}(i, s, c)
	}
	wg.Wait()
	res.Stats = pool.Stats()
	return res, nil
}
