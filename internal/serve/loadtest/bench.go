package loadtest

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"adavp/internal/core"
	"adavp/internal/serve"
)

// Schema identifies the BENCH_serve.json layout. Bump on shape changes.
// /2: per-scenario throughput + prepare-span accounting and the pipelined
// scenario pair (staged frame-prefetch model).
const Schema = "adavp-serve-bench/2"

// Suite is the committed BENCH_serve.json artifact: the canonical scenario
// matrix's reports. Every field derives from the scenario configs through
// the deterministic harness, so regenerating the suite from unchanged code
// reproduces the committed file byte for byte — scheduler changes show up
// in review as a diff.
type Suite struct {
	Schema    string    `json:"schema"`
	Scenarios []*Report `json:"scenarios"`
}

// Validate checks the suite envelope and every scenario report.
func (s *Suite) Validate() error {
	if s.Schema != Schema {
		return fmt.Errorf("loadtest: suite schema %q, want %q", s.Schema, Schema)
	}
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("loadtest: suite has no scenarios")
	}
	seen := make(map[string]bool, len(s.Scenarios))
	for _, r := range s.Scenarios {
		if r == nil {
			return fmt.Errorf("loadtest: suite holds a null scenario")
		}
		if seen[r.Name] {
			return fmt.Errorf("loadtest: duplicate scenario %q", r.Name)
		}
		seen[r.Name] = true
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the suite in the committed artifact format.
func (s *Suite) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadSuite parses and validates a suite from the artifact format.
func ReadSuite(r io.Reader) (*Suite, error) {
	var s Suite
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadtest: parsing suite: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// BenchConfigs is the canonical BENCH_serve.json scenario matrix: 1000
// streams over 8 slots with arrival churn, two flash crowds and mild
// setting skew, swept across batch capacities. The unbatched scenario is
// the baseline the batched ones must beat on p95 slot-wait; the lingering
// variant additionally exercises the fill-timeout path. The final pair is
// the pipelined column: a request-bound topology (one stream per slot, so
// the per-cycle prepare span — not queueing — limits cadence) run once with
// prepare sequential on the request path and once with the staged prefetch
// overlapping it, whose throughput delta RunBench gates on.
func BenchConfigs() []Config {
	base := Config{
		Streams:     1000,
		Slots:       8,
		Horizon:     3 * time.Minute,
		Settings:    []core.Setting{core.Setting512, core.Setting416, core.Setting320},
		SettingSkew: 0.15,
		ChurnRate:   0.5,
		FlashCrowds: 2,
		SLO:         30 * time.Second,
		Seed:        1,
	}
	mk := func(name string, b serve.BatchConfig) Config {
		c := base
		c.Name = name
		c.Batch = b
		return c
	}
	pipeBase := Config{
		Streams:  8,
		Slots:    8,
		Horizon:  3 * time.Minute,
		Settings: []core.Setting{core.Setting320},
		SLO:      time.Second,
		Seed:     1,
	}
	mkPipe := func(name string, depth int) Config {
		c := pipeBase
		c.Name = name
		c.PipelineDepth = depth
		return c
	}
	return []Config{
		mk("unbatched-b1", serve.BatchConfig{Size: 1}),
		mk("batched-b4-linger5ms", serve.BatchConfig{Size: 4, Linger: 5 * time.Millisecond}),
		mk("batched-b8", serve.BatchConfig{Size: 8}),
		mkPipe("sequential-prep-b1", 1),
		mkPipe("pipelined-d3-b1", 3),
	}
}

// RunSuite executes a scenario matrix into a suite.
func RunSuite(cfgs []Config) (*Suite, error) {
	s := &Suite{Schema: Schema}
	for _, cfg := range cfgs {
		rep, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		s.Scenarios = append(s.Scenarios, rep)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// RunBench executes the canonical matrix and enforces the stories the
// artifact exists to pin: every batched scenario must beat the unbatched
// baseline on p95 slot-wait and SLO attainment under this contention, and
// the pipelined column must beat its sequential-prepare reference on
// throughput (with actual prepare time hidden, or the overlap model did
// nothing).
func RunBench() (*Suite, error) {
	s, err := RunSuite(BenchConfigs())
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*Report, len(s.Scenarios))
	for _, r := range s.Scenarios {
		byName[r.Name] = r
	}
	base := s.Scenarios[0]
	for _, r := range s.Scenarios[1:] {
		if r.BatchSize <= 1 {
			continue // the pipelined pair runs a different topology
		}
		if r.Wait.P95 >= base.Wait.P95 {
			return nil, fmt.Errorf("loadtest: %s p95 slot-wait %.1fms did not beat %s's %.1fms",
				r.Name, r.Wait.P95, base.Name, base.Wait.P95)
		}
		if r.SLOAttainment < base.SLOAttainment {
			return nil, fmt.Errorf("loadtest: %s SLO attainment %.3f under %s's %.3f",
				r.Name, r.SLOAttainment, base.Name, base.SLOAttainment)
		}
	}
	seq, pipe := byName["sequential-prep-b1"], byName["pipelined-d3-b1"]
	if seq == nil || pipe == nil {
		return nil, fmt.Errorf("loadtest: canonical matrix is missing the pipelined pair")
	}
	if pipe.ThroughputRPS <= seq.ThroughputRPS {
		return nil, fmt.Errorf("loadtest: pipelined throughput %.2f rps did not beat sequential-prep %.2f rps",
			pipe.ThroughputRPS, seq.ThroughputRPS)
	}
	if pipe.PrepareHiddenMS <= 0 {
		return nil, fmt.Errorf("loadtest: pipelined column hid no prepare time")
	}
	return s, nil
}
