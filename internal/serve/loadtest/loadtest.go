// Package loadtest is the serving layer's load generator: a deterministic
// discrete-event harness that drives thousands of synthetic detection
// streams through the real scheduling primitives — serve.FairQueue,
// FairQueue.PopBatch and serve.BatchLatency, the exact code the live pool
// and the virtual-clock scheduler run — under arrival churn
// (connect/disconnect cycles), flash crowds (cohorts connecting at once)
// and setting skew (mixed model settings that fragment batches).
//
// Unlike sim.RunMulti it does not run tracker/detector engines per stream;
// each grant's slot occupancy comes from the calibrated core.LatencyModel
// (setting switch + one inference at the stream's setting), which makes a
// 1000-stream, minutes-long horizon run in well under a second while
// exercising the genuine queue ordering, batch-drain and linger logic. The
// harness pins the SLO story: per-request slot-wait, execution and
// end-to-end latency distributions (p50/p95/p99/max), SLO attainment, and
// the generalized fairness bound serve.FairnessBoundBatched checked against
// the worst observed calibration age.
//
// Determinism contract: the package is on the detrand deterministic-package
// list — everything derives from Config.Seed through internal/rng on a
// virtual clock; two same-config runs return identical Reports.
package loadtest

import (
	"fmt"
	"math"
	"sort"
	"time"

	"adavp/internal/core"
	"adavp/internal/rng"
	"adavp/internal/serve"
)

// Config parameterizes one load-generation scenario. Zero-value fields take
// the documented defaults.
type Config struct {
	// Name labels the scenario in the Report (and in BENCH_serve.json).
	Name string
	// Streams is N, the number of synthetic streams. Default 64.
	Streams int
	// Slots is K, the number of shared detector slots. Default 2.
	Slots int
	// QueueBound caps the wait queue (serve.NewFairQueue). Default: Streams,
	// which never refuses — each stream keeps at most one request in flight.
	QueueBound int
	// Batch configures the batching executor under test; the zero value is
	// the unbatched one-request-per-grant scheduler. Linger is honored
	// exactly (the harness owns a virtual clock).
	Batch serve.BatchConfig
	// FrameInterval is the camera interval: a stream re-requests one interval
	// after its previous calibration completes. Default 33ms (~30 FPS).
	FrameInterval time.Duration
	// Horizon is the virtual-time length of the run: no stream issues a new
	// request past it (in-flight requests drain). Default 60s.
	Horizon time.Duration
	// Settings is the model-setting palette. The first entry is the dominant
	// setting; SettingSkew routes a fraction of (re)connects to the rest.
	// Default: {Setting512}.
	Settings []core.Setting
	// SettingSkew is the probability that a stream draws a non-dominant
	// setting at connect/reconnect, fragmenting batches (PopBatch stops at
	// the first incompatible head). 0 disables skew. Default 0.
	SettingSkew float64
	// ChurnRate is the expected number of disconnect/reconnect cycles per
	// stream per virtual minute; off periods average a quarter of on
	// periods. 0 disables churn. A reconnecting stream redraws its setting
	// and restarts its staleness clock.
	ChurnRate float64
	// FlashCrowds is the number of cohorts that connect simultaneously,
	// spread evenly across the horizon; each cohort is FlashFraction of the
	// stream population held back until its crowd instant. 0 disables.
	FlashCrowds int
	// FlashFraction is the fraction of streams per flash crowd. Default 0.25.
	FlashFraction float64
	// SLO is the end-to-end (request → calibration published) latency target
	// that attainment is measured against. Default 1s.
	SLO time.Duration
	// Seed derives every random choice. Default 1.
	Seed uint64
	// PipelineDepth models the staged frame-prefetch pipeline. 0 (default)
	// is the legacy request model: frame preparation is not on the request
	// path at all. 1 is the sequential staged reference: each cycle's
	// prepare span (render + detector-input build, drawn from
	// core.LatencyModel.FeatureExtract) sits on the critical path between a
	// calibration completing and the next request issuing. >1 is the
	// pipelined column: the prefetch stage runs while the stream waits for
	// its slot and while its grant executes, so the prepare overlaps that
	// span and only the un-overlapped remainder delays the next request.
	PipelineDepth int
}

func (c Config) withDefaults() Config {
	if c.Streams <= 0 {
		c.Streams = 64
	}
	if c.Slots <= 0 {
		c.Slots = 2
	}
	if c.QueueBound <= 0 {
		c.QueueBound = c.Streams
	}
	if c.Batch.Size < 1 {
		c.Batch.Size = 1
	}
	if c.Batch.Linger < 0 {
		c.Batch.Linger = 0
	}
	if c.FrameInterval <= 0 {
		c.FrameInterval = 33 * time.Millisecond
	}
	if c.Horizon <= 0 {
		c.Horizon = 60 * time.Second
	}
	if len(c.Settings) == 0 {
		c.Settings = []core.Setting{core.Setting512}
	}
	if c.FlashFraction <= 0 || c.FlashFraction > 1 {
		c.FlashFraction = 0.25
	}
	if c.SLO <= 0 {
		c.SLO = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Quantiles is one latency distribution, in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// Report is one scenario's outcome — the JSON shape committed to
// BENCH_serve.json. All durations are milliseconds of virtual time.
type Report struct {
	// Scenario echo.
	Name            string  `json:"name"`
	Streams         int     `json:"streams"`
	Slots           int     `json:"slots"`
	QueueBound      int     `json:"queue_bound"`
	BatchSize       int     `json:"batch_size"`
	LingerMS        float64 `json:"linger_ms"`
	FrameIntervalMS float64 `json:"frame_interval_ms"`
	HorizonMS       float64 `json:"horizon_ms"`
	ChurnPerMin     float64 `json:"churn_per_min"`
	FlashCrowds     int     `json:"flash_crowds"`
	SettingSkew     float64 `json:"setting_skew"`
	Seed            uint64  `json:"seed"`
	PipelineDepth   int     `json:"pipeline_depth"`

	// Flow accounting. Requests = Grants + Deferred.
	Requests       int     `json:"requests"`
	Grants         int     `json:"grants"`
	Deferred       int     `json:"deferred"`
	Reconnects     int     `json:"reconnects"`
	Batches        int     `json:"batches"`
	MaxBatch       int     `json:"max_batch"`
	MeanBatchFill  float64 `json:"mean_batch_fill"`
	PeakQueueDepth int     `json:"peak_queue_depth"`

	// Latency distributions: queueing (request → grant), execution
	// (grant → batch completion) and end-to-end (request → calibration),
	// plus the staleness distribution between consecutive calibrations.
	Wait     Quantiles `json:"slot_wait"`
	Exec     Quantiles `json:"slot_exec"`
	E2E      Quantiles `json:"e2e"`
	CalibAge Quantiles `json:"calib_age"`

	// The throughput story: granted calibrations per second of virtual
	// makespan, plus the prepare-span accounting behind the pipelined
	// column — how much prepare time the model put on the request path and
	// how much of it the staged prefetch hid by overlapping slot wait and
	// execution. PrepareHiddenMS is zero unless PipelineDepth > 1.
	ThroughputRPS   float64 `json:"throughput_rps"`
	PrepareMS       float64 `json:"prepare_total_ms"`
	PrepareHiddenMS float64 `json:"prepare_hidden_ms"`

	// The SLO story: fraction of granted requests whose end-to-end latency
	// met the target.
	SLOMS         float64 `json:"slo_ms"`
	SLOAttainment float64 `json:"slo_attainment"`

	// The fairness story: worst observed calibration age against the
	// generalized bound computed from the worst single-request occupancy.
	// The bound is enforceable only when nothing was deferred (a refused
	// request retries a frame later, which the bound's derivation excludes).
	MaxSingleOccMS   float64 `json:"max_single_occupancy_ms"`
	FairnessBoundMS  float64 `json:"fairness_bound_ms"`
	MaxCalibAgeMS    float64 `json:"max_calib_age_ms"`
	BoundEnforceable bool    `json:"bound_enforceable"`
	BoundHeld        bool    `json:"bound_held"`
}

// Validate checks a Report against the BENCH_serve.json schema: scenario
// fields present, flow accounting consistent, distributions ordered, the
// attainment a valid fraction, and the fairness bound held whenever it was
// enforceable. The loadgen smoke gate and the committed-artifact test both
// run every report through it.
func (r *Report) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("loadtest: report missing name")
	}
	if r.Streams < 1 || r.Slots < 1 || r.BatchSize < 1 || r.QueueBound < 1 {
		return fmt.Errorf("loadtest: %s: non-positive topology (streams %d, slots %d, batch %d, bound %d)",
			r.Name, r.Streams, r.Slots, r.BatchSize, r.QueueBound)
	}
	if r.Grants < 1 {
		return fmt.Errorf("loadtest: %s: no grants recorded", r.Name)
	}
	if r.Requests != r.Grants+r.Deferred {
		return fmt.Errorf("loadtest: %s: flow imbalance: %d requests != %d grants + %d deferred",
			r.Name, r.Requests, r.Grants, r.Deferred)
	}
	if r.Batches < 1 || r.MaxBatch < 1 || r.MaxBatch > r.BatchSize {
		return fmt.Errorf("loadtest: %s: batch accounting out of range (batches %d, max %d, capacity %d)",
			r.Name, r.Batches, r.MaxBatch, r.BatchSize)
	}
	if r.MeanBatchFill < 1 || r.MeanBatchFill > float64(r.BatchSize) {
		return fmt.Errorf("loadtest: %s: mean batch fill %.3f outside [1, %d]", r.Name, r.MeanBatchFill, r.BatchSize)
	}
	for _, q := range []struct {
		name string
		q    Quantiles
	}{{"slot_wait", r.Wait}, {"slot_exec", r.Exec}, {"e2e", r.E2E}, {"calib_age", r.CalibAge}} {
		if q.q.P50 < 0 || q.q.P50 > q.q.P95 || q.q.P95 > q.q.P99 || q.q.P99 > q.q.Max {
			return fmt.Errorf("loadtest: %s: %s quantiles not ordered: %+v", r.Name, q.name, q.q)
		}
	}
	if r.SLOAttainment < 0 || r.SLOAttainment > 1 {
		return fmt.Errorf("loadtest: %s: SLO attainment %.3f outside [0, 1]", r.Name, r.SLOAttainment)
	}
	if r.ThroughputRPS <= 0 {
		return fmt.Errorf("loadtest: %s: non-positive throughput %.3f rps", r.Name, r.ThroughputRPS)
	}
	if r.PrepareHiddenMS < 0 || r.PrepareHiddenMS > r.PrepareMS {
		return fmt.Errorf("loadtest: %s: hidden prepare %.1fms outside [0, total %.1fms]",
			r.Name, r.PrepareHiddenMS, r.PrepareMS)
	}
	if r.PipelineDepth <= 1 && r.PrepareHiddenMS != 0 {
		return fmt.Errorf("loadtest: %s: sequential run hid %.1fms of prepare", r.Name, r.PrepareHiddenMS)
	}
	if r.FairnessBoundMS <= 0 {
		return fmt.Errorf("loadtest: %s: non-positive fairness bound", r.Name)
	}
	if r.BoundEnforceable && !r.BoundHeld {
		return fmt.Errorf("loadtest: %s: fairness bound VIOLATED: max calib age %.1fms over bound %.1fms",
			r.Name, r.MaxCalibAgeMS, r.FairnessBoundMS)
	}
	return nil
}

// lstream is one synthetic stream's generator state.
type lstream struct {
	id      string
	lat     *core.LatencyModel // per-grant occupancy draws
	churn   *rng.Stream        // on/off window draws
	pick    *rng.Stream        // setting draws
	setting core.Setting
	queued  bool
	done    bool          // past the horizon; never requests again
	readyAt time.Duration // when the pending request was (or will be) issued
	onUntil time.Duration // end of the current connected window
	// calibValid gates staleness samples: false before the first calibration
	// of a connected window, so ages never span a disconnect.
	calibValid bool
	lastCalib  time.Duration
}

// Run executes one scenario and returns its report. Pure function of cfg:
// same config, same report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		Name:            cfg.Name,
		Streams:         cfg.Streams,
		Slots:           cfg.Slots,
		QueueBound:      cfg.QueueBound,
		BatchSize:       cfg.Batch.Size,
		LingerMS:        ms(cfg.Batch.Linger),
		FrameIntervalMS: ms(cfg.FrameInterval),
		HorizonMS:       ms(cfg.Horizon),
		ChurnPerMin:     cfg.ChurnRate,
		FlashCrowds:     cfg.FlashCrowds,
		SettingSkew:     cfg.SettingSkew,
		Seed:            cfg.Seed,
		PipelineDepth:   cfg.PipelineDepth,
	}
	if rep.Name == "" {
		rep.Name = "adhoc"
	}

	root := rng.New(cfg.Seed).DeriveString("loadtest")
	onMean := time.Duration(0)
	if cfg.ChurnRate > 0 {
		onMean = time.Duration(float64(time.Minute) / cfg.ChurnRate)
	}

	drawSetting := func(s *lstream) core.Setting {
		if cfg.SettingSkew > 0 && len(cfg.Settings) > 1 && s.pick.Bool(cfg.SettingSkew) {
			return cfg.Settings[1+s.pick.Intn(len(cfg.Settings)-1)]
		}
		return cfg.Settings[0]
	}

	// Flash crowds claim the tail of the stream population, one contiguous
	// cohort per crowd; everyone else connects staggered across the first
	// frame interval.
	crowdSize := 0
	if cfg.FlashCrowds > 0 {
		crowdSize = int(cfg.FlashFraction * float64(cfg.Streams))
		if crowdSize < 1 {
			crowdSize = 1
		}
		if crowdSize*cfg.FlashCrowds > cfg.Streams/2 {
			crowdSize = cfg.Streams / 2 / cfg.FlashCrowds
			if crowdSize < 1 {
				crowdSize = 1
			}
		}
	}
	crowdAt := func(c int) time.Duration {
		return cfg.Horizon * time.Duration(c+1) / time.Duration(cfg.FlashCrowds+1)
	}

	ss := make([]*lstream, cfg.Streams)
	for i := range ss {
		sr := root.Derive(uint64(i)).DeriveString("stream")
		s := &lstream{
			id:    fmt.Sprintf("ld%d", i),
			lat:   core.NewLatencyModel(sr.DeriveString("lat")),
			churn: sr.DeriveString("churn"),
			pick:  sr.DeriveString("pick"),
		}
		s.setting = drawSetting(s)
		s.readyAt = cfg.FrameInterval * time.Duration(i) / time.Duration(cfg.Streams)
		if crowd := crowdOf(i, cfg.Streams, crowdSize, cfg.FlashCrowds); crowd >= 0 {
			s.readyAt = crowdAt(crowd)
		}
		if onMean > 0 {
			s.onUntil = s.readyAt + expDur(s.churn, onMean)
		}
		ss[i] = s
	}

	// advance rolls a request instant forward through disconnect windows and
	// the horizon: a request landing past the connected window slips to the
	// next reconnect (staleness clock reset, setting redrawn), and a request
	// past the horizon retires the stream.
	advance := func(s *lstream, at time.Duration) {
		if onMean > 0 {
			for at >= s.onUntil {
				off := expDur(s.churn, onMean/4)
				start := s.onUntil + off
				s.onUntil = start + expDur(s.churn, onMean)
				if at < start {
					at = start
				}
				s.calibValid = false
				s.setting = drawSetting(s)
				rep.Reconnects++
			}
		}
		s.readyAt = at
		if at > cfg.Horizon {
			s.done = true
		}
	}

	q := serve.NewFairQueue(cfg.QueueBound)
	slots := make([]time.Duration, cfg.Slots)
	var waits, execs, e2es, ages []float64
	var maxSingle, maxAge time.Duration
	var prepTotal, prepHidden, makespan time.Duration
	batchSum := 0

	noteDepth := func() {
		if q.Len() > rep.PeakQueueDepth {
			rep.PeakQueueDepth = q.Len()
		}
	}
	// admit enqueues every stream whose request time has arrived, in
	// (readyAt, index) order; a full queue defers by one frame interval.
	admit := func(t time.Duration) {
		for {
			best := -1
			for i, s := range ss {
				if s.done || s.queued || s.readyAt > t {
					continue
				}
				if best < 0 || s.readyAt < ss[best].readyAt {
					best = i
				}
			}
			if best < 0 {
				break
			}
			s := ss[best]
			rep.Requests++
			if q.Push(serve.Request{Stream: s.id, Index: best, Setting: s.setting, LastCalib: s.lastCalib}) {
				s.queued = true
			} else {
				rep.Deferred++
				advance(s, s.readyAt+cfg.FrameInterval)
			}
		}
		noteDepth()
	}

	for {
		// The earliest-free slot (lowest index among ties) serves next.
		si := 0
		for i := 1; i < len(slots); i++ {
			if slots[i] < slots[si] {
				si = i
			}
		}
		t := slots[si]
		admit(t)
		if q.Len() == 0 {
			earliest, found := time.Duration(0), false
			for _, s := range ss {
				if s.done || s.queued {
					continue
				}
				if !found || s.readyAt < earliest {
					earliest, found = s.readyAt, true
				}
			}
			if !found {
				break // every stream retired and nothing queued: drained
			}
			if earliest > t {
				t = earliest
			}
			admit(t)
			if q.Len() == 0 {
				continue // the earliest arrivals all slipped past the horizon
			}
		}
		reqs := q.PopBatch(cfg.Batch.Size)
		// Linger: hold the partially-filled batch for compatible arrivals
		// inside the window, exactly as sim.RunMulti does on its virtual
		// clock.
		if len(reqs) < cfg.Batch.Size && cfg.Batch.Linger > 0 {
			deadline := t + cfg.Batch.Linger
			for len(reqs) < cfg.Batch.Size {
				earliest := time.Duration(-1)
				for _, s := range ss {
					if s.done || s.queued || s.readyAt > deadline {
						continue
					}
					if earliest < 0 || s.readyAt < earliest {
						earliest = s.readyAt
					}
				}
				if earliest < 0 {
					break
				}
				t = earliest
				admit(t)
				for len(reqs) < cfg.Batch.Size {
					head, ok := q.Peek()
					if !ok || head.Setting != reqs[0].Setting {
						break
					}
					r, _ := q.Pop()
					reqs = append(reqs, r)
				}
			}
		}
		noteDepth()

		// Execute the fused batch: the longest member's single-request span
		// (setting switch + one inference at the batch setting) stretched by
		// the calibrated batch cost.
		rep.Batches++
		batchSum += len(reqs)
		if len(reqs) > rep.MaxBatch {
			rep.MaxBatch = len(reqs)
		}
		var maxSpan time.Duration
		for _, r := range reqs {
			s := ss[r.Index]
			span := s.lat.SettingSwitch() + s.lat.Detect(r.Setting)
			if span > maxSpan {
				maxSpan = span
			}
			if span > maxSingle {
				maxSingle = span
			}
		}
		batchEnd := t + serve.BatchLatency(maxSpan, len(reqs))
		for _, r := range reqs {
			s := ss[r.Index]
			s.queued = false
			rep.Grants++
			wait := t - s.readyAt
			waits = append(waits, ms(wait))
			execs = append(execs, ms(batchEnd-t))
			e2e := batchEnd - s.readyAt
			e2es = append(e2es, ms(e2e))
			if e2e <= cfg.SLO {
				rep.SLOAttainment++ // running count; normalized below
			}
			if s.calibValid {
				age := batchEnd - s.lastCalib
				ages = append(ages, ms(age))
				if age > maxAge {
					maxAge = age
				}
			}
			s.calibValid = true
			s.lastCalib = batchEnd
			next := batchEnd + cfg.FrameInterval
			// The prepare model behind the pipelined column: sequentially
			// (depth 1) the frame-prepare span delays the next request;
			// pipelined (depth > 1), the prefetch stage ran during this
			// cycle's slot wait and execution, so only the remainder the
			// overlap could not cover stays on the path.
			if cfg.PipelineDepth >= 1 {
				prep := s.lat.FeatureExtract()
				prepTotal += prep
				if cfg.PipelineDepth > 1 {
					overlap := batchEnd - s.readyAt // wait + exec this cycle
					if overlap > prep {
						overlap = prep
					}
					prep -= overlap
					prepHidden += overlap
				}
				next += prep
			}
			advance(s, next)
		}
		slots[si] = batchEnd
		if batchEnd > makespan {
			makespan = batchEnd
		}
	}

	if rep.Grants == 0 {
		return nil, fmt.Errorf("loadtest: %s: horizon %v granted nothing", rep.Name, cfg.Horizon)
	}
	rep.MeanBatchFill = float64(batchSum) / float64(rep.Batches)
	rep.SLOAttainment /= float64(rep.Grants)
	rep.Wait = quantiles(waits)
	rep.Exec = quantiles(execs)
	rep.E2E = quantiles(e2es)
	rep.CalibAge = quantiles(ages)
	rep.SLOMS = ms(cfg.SLO)
	if makespan > 0 {
		rep.ThroughputRPS = float64(rep.Grants) / makespan.Seconds()
	}
	rep.PrepareMS = ms(prepTotal)
	rep.PrepareHiddenMS = ms(prepHidden)
	rep.MaxSingleOccMS = ms(maxSingle)
	bound := serve.FairnessBoundBatched(cfg.Streams, cfg.Slots, cfg.Batch.Size, maxSingle, cfg.FrameInterval, cfg.Batch.Linger)
	rep.FairnessBoundMS = ms(bound)
	rep.MaxCalibAgeMS = ms(maxAge)
	rep.BoundEnforceable = rep.Deferred == 0
	rep.BoundHeld = maxAge <= bound
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return rep, nil
}

// crowdOf returns the flash-crowd index stream i belongs to, or -1. Crowds
// claim contiguous cohorts from the tail of the population: crowd 0 takes
// the last crowdSize streams, crowd 1 the crowdSize before them, and so on.
func crowdOf(i, streams, crowdSize, crowds int) int {
	if crowds <= 0 || crowdSize <= 0 {
		return -1
	}
	fromEnd := streams - 1 - i
	c := fromEnd / crowdSize
	if c < crowds {
		return c
	}
	return -1
}

// expDur draws an exponential duration with the given mean, floored at one
// millisecond so on/off windows always make progress.
func expDur(r *rng.Stream, mean time.Duration) time.Duration {
	d := time.Duration(r.Exp(float64(mean)))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// quantiles reduces samples (milliseconds) to the reported distribution,
// using the ceil-rank convention: Pq is the smallest sample with at least
// q of the mass at or below it.
func quantiles(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return Quantiles{P50: pick(0.50), P95: pick(0.95), P99: pick(0.99), Max: s[len(s)-1]}
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
