package loadtest

import (
	"reflect"
	"testing"
	"time"

	"adavp/internal/core"
	"adavp/internal/serve"
)

// contended is a scenario with heavy slot contention: far more streams than
// slots, arrival churn, two flash crowds and mild setting skew.
func contended(batch serve.BatchConfig) Config {
	return Config{
		Name:        "contended",
		Streams:     200,
		Slots:       4,
		Batch:       batch,
		Horizon:     30 * time.Second,
		Settings:    []core.Setting{core.Setting512, core.Setting416, core.Setting320},
		SettingSkew: 0.15,
		ChurnRate:   2,
		FlashCrowds: 2,
		Seed:        7,
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(contended(serve.BatchConfig{Size: 4}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(contended(serve.BatchConfig{Size: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-config runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// The SLO story the harness exists to pin: under contention, batching (B>1)
// must beat the unbatched executor on p95 slot-wait — a batched grant
// retires several compatible requests per BatchLatency span instead of one
// per full span.
func TestBatchingBeatsUnbatchedUnderContention(t *testing.T) {
	solo, err := Run(contended(serve.BatchConfig{Size: 1}))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Run(contended(serve.BatchConfig{Size: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if batched.MaxBatch < 2 {
		t.Fatalf("batching never engaged: max batch %d", batched.MaxBatch)
	}
	if batched.Wait.P95 >= solo.Wait.P95 {
		t.Fatalf("batched p95 slot-wait %.1fms did not beat unbatched %.1fms",
			batched.Wait.P95, solo.Wait.P95)
	}
	if batched.SLOAttainment <= solo.SLOAttainment {
		t.Fatalf("batched SLO attainment %.3f did not beat unbatched %.3f",
			batched.SLOAttainment, solo.SLOAttainment)
	}
}

// The fairness story: with the default queue bound nothing defers, so the
// generalized bound is enforceable — and must hold even through churn, flash
// crowds, skew and lingering.
func TestFairnessBoundHeldUnderChurn(t *testing.T) {
	cfg := contended(serve.BatchConfig{Size: 4, Linger: 10 * time.Millisecond})
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deferred != 0 || !rep.BoundEnforceable {
		t.Fatalf("default queue bound deferred %d requests; bound not enforceable", rep.Deferred)
	}
	if !rep.BoundHeld {
		t.Fatalf("fairness bound violated: max calib age %.1fms over bound %.1fms",
			rep.MaxCalibAgeMS, rep.FairnessBoundMS)
	}
	if rep.Reconnects == 0 {
		t.Fatal("churn rate 2/min produced no reconnects")
	}
}

// A starved queue defers requests and switches the bound off instead of
// reporting a phantom violation.
func TestTightQueueBoundDefers(t *testing.T) {
	cfg := contended(serve.BatchConfig{Size: 1})
	cfg.QueueBound = 2
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deferred == 0 {
		t.Fatal("queue bound 2 under 200 streams deferred nothing")
	}
	if rep.BoundEnforceable {
		t.Fatal("bound reported enforceable despite deferrals")
	}
	if rep.Requests != rep.Grants+rep.Deferred {
		t.Fatalf("flow imbalance: %d != %d + %d", rep.Requests, rep.Grants, rep.Deferred)
	}
}

// Setting skew fragments batches: the mean fill with a skewed palette must
// drop below the uniform palette's.
func TestSettingSkewFragmentsBatches(t *testing.T) {
	uniform := contended(serve.BatchConfig{Size: 8})
	uniform.Settings = []core.Setting{core.Setting512}
	uniform.SettingSkew = 0
	u, err := Run(uniform)
	if err != nil {
		t.Fatal(err)
	}
	skewed := contended(serve.BatchConfig{Size: 8})
	skewed.SettingSkew = 0.5
	s, err := Run(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanBatchFill >= u.MeanBatchFill {
		t.Fatalf("skew 0.5 mean fill %.2f not below uniform %.2f", s.MeanBatchFill, u.MeanBatchFill)
	}
}

func TestValidateRejectsCorruptReports(t *testing.T) {
	good, err := Run(contended(serve.BatchConfig{Size: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("fresh report failed validation: %v", err)
	}
	corrupt := []func(r *Report){
		func(r *Report) { r.Name = "" },
		func(r *Report) { r.Slots = 0 },
		func(r *Report) { r.Grants = 0 },
		func(r *Report) { r.Requests++ },
		func(r *Report) { r.MaxBatch = r.BatchSize + 1 },
		func(r *Report) { r.Wait.P95 = r.Wait.P99 + 1 },
		func(r *Report) { r.SLOAttainment = 1.5 },
		func(r *Report) { r.FairnessBoundMS = 0 },
		func(r *Report) { r.BoundEnforceable, r.BoundHeld = true, false },
	}
	for i, mut := range corrupt {
		r := *good
		mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("corruption %d passed validation", i)
		}
	}
}

// Scale check: the harness must handle the BENCH_serve population (1000+
// streams) in test-suite time.
func TestThousandStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := contended(serve.BatchConfig{Size: 8})
	cfg.Name = "thousand"
	cfg.Streams = 1000
	cfg.Slots = 8
	cfg.Horizon = 20 * time.Second
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grants < 100 {
		t.Fatalf("only %d grants over the horizon", rep.Grants)
	}
	if !rep.BoundHeld {
		t.Fatalf("fairness bound violated at scale: age %.1fms over %.1fms",
			rep.MaxCalibAgeMS, rep.FairnessBoundMS)
	}
}
