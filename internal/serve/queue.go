// Package serve is the multi-stream serving layer: N independent AdaVP
// streams — each with its own tracker, adaptation state, guard supervisor
// and scenario — share a pool of K detector slots (K < N means detection
// requests queue). The paper's premise, one heavyweight detector paired with
// cheap trackers (§IV-B), generalizes directly: while a stream waits for the
// shared detector it keeps tracking and extrapolating against its previous
// calibration, exactly as MPDT does between calibrations — staleness grows
// instead of memory.
//
// The package provides three layers:
//
//   - FairQueue: the pure scheduling policy — a bounded
//     oldest-calibration-first priority queue. Deterministic and clock-free,
//     it is shared verbatim by the live pool below and by the virtual-clock
//     scheduler in internal/sim (sim.RunMulti), so both engines queue in the
//     exact same order.
//   - Pool: the live K-slot batching executor around FairQueue that rt's
//     detector loop blocks on. Bounded waiting with backpressure: when the
//     wait queue is full Acquire fails fast and the stream skips the
//     detection instead of queueing unboundedly. Each slot grant drains up
//     to B compatible requests (same model setting, PopBatch) and grants
//     them as one fused batch; the slot frees when the last member releases.
//   - Run: the live multi-stream runner — one supervised rt pipeline per
//     stream against a shared Pool, a shared observability registry
//     (per-stream series labeled stream=<id>) and a shared guard escalation
//     budget.
//
// A request's life is an explicit staged pipeline —
// admit → queue → batch → detect → publish — with per-stage flow counters in
// Stats (stats.go) and the queueing vs. execution split published as the
// MetricSlotWait / MetricSlotExec histograms by the clock-owning callers.
//
// Determinism contract: this package never reads a clock (it is on the
// detrand deterministic-package list). All queue ordering derives from
// caller-supplied calibration timestamps — wall-relative in rt, virtual in
// sim — and wait durations are measured by the callers that own the clock.
package serve

import (
	"time"

	"adavp/internal/core"
)

// Request is one stream's claim on a detector slot.
type Request struct {
	// Stream identifies the requesting stream (labels, diagnostics).
	Stream string
	// Index is an opaque caller-side identifier: the waiter slot in the live
	// pool, the stream index in the virtual-clock scheduler.
	Index int
	// Setting is the model setting the requester intends to run — the batch
	// compatibility key. A slot grant fuses only requests that share one
	// setting into a batched inference (PopBatch); the requester reports the
	// setting it holds *before* its post-grant adaptation decision, so two
	// members of one batch are compatible at grant time even if one of them
	// switches afterwards.
	Setting core.Setting
	// LastCalib is the pipeline time at which the stream's most recent
	// calibration completed (zero before the first). The fairness key:
	// oldest calibration is served first, so no stream starves — a stream
	// that just calibrated yields to every stream running on staler results.
	LastCalib time.Duration
	// seq breaks ties FIFO among equal calibration ages.
	seq uint64
}

// FairQueue is a bounded oldest-calibration-first wait queue. It is a pure
// data structure — no clock, no goroutines, not safe for concurrent use on
// its own (Pool wraps it in a mutex; the virtual-clock scheduler is
// single-threaded). Ordering is deterministic: by LastCalib ascending, then
// by push order.
type FairQueue struct {
	bound int
	seq   uint64
	heap  []Request // min-heap on (LastCalib, seq)
}

// NewFairQueue returns a queue admitting at most bound waiting requests;
// bound < 1 is clamped to 1 (a queue that admits nothing could never grant).
func NewFairQueue(bound int) *FairQueue {
	if bound < 1 {
		bound = 1
	}
	return &FairQueue{bound: bound}
}

// Bound returns the queue's capacity.
func (q *FairQueue) Bound() int { return q.bound }

// Len returns the number of waiting requests.
func (q *FairQueue) Len() int { return len(q.heap) }

// Push enqueues a request, reporting false when the queue is full — the
// backpressure signal: the caller keeps tracking against its previous
// calibration and retries later instead of waiting.
func (q *FairQueue) Push(r Request) bool {
	if len(q.heap) >= q.bound {
		return false
	}
	q.seq++
	r.seq = q.seq
	q.heap = append(q.heap, r)
	q.up(len(q.heap) - 1)
	return true
}

// Pop removes and returns the request with the oldest calibration (FIFO
// among ties); ok is false on an empty queue.
func (q *FairQueue) Pop() (Request, bool) {
	if len(q.heap) == 0 {
		return Request{}, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

// Peek returns the request Pop would return next without removing it; ok is
// false on an empty queue.
func (q *FairQueue) Peek() (Request, bool) {
	if len(q.heap) == 0 {
		return Request{}, false
	}
	return q.heap[0], true
}

// PopBatch removes and returns up to max requests that can execute as one
// batched inference: the head request (oldest calibration, FIFO among ties)
// plus subsequent requests in pop order for as long as they carry the head's
// Setting. The first head with a different setting stops the drain — a batch
// never reaches past it, so the strict oldest-calibration-first grant order
// of Pop is preserved exactly and setting skew fragments batches instead of
// reordering them. max < 1 is clamped to 1, making PopBatch(1) ≡ Pop. Returns
// nil on an empty queue.
func (q *FairQueue) PopBatch(max int) []Request {
	return q.PopBatchFunc(max, nil)
}

// PopBatchFunc is PopBatch with a skip predicate for abandoned entries:
// a request for which skip returns true is removed from the queue and
// discarded — it neither counts toward max nor supplies the batch's
// compatibility setting, and the drain scans straight past it (even when its
// setting differs from the batch's). Without this the live pool under-filled
// batches: a cancelled waiter inside the same-setting prefix consumed batch
// capacity, and one with a different setting terminated the drain early.
// Skipping dead entries cannot reorder live grants — a skipped request is
// never granted at all, so the batch is still a strict prefix of the pop
// order restricted to live requests. A nil skip keeps every entry, making
// PopBatchFunc(max, nil) ≡ the historical PopBatch byte for byte.
func (q *FairQueue) PopBatchFunc(max int, skip func(Request) bool) []Request {
	if max < 1 {
		max = 1
	}
	var batch []Request
	for len(batch) < max && len(q.heap) > 0 {
		head := q.heap[0]
		if skip != nil && skip(head) {
			q.Pop()
			continue
		}
		if len(batch) > 0 && head.Setting != batch[0].Setting {
			break
		}
		q.Pop()
		batch = append(batch, head)
	}
	return batch
}

// less orders the heap: oldest calibration first, then FIFO.
func (q *FairQueue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.LastCalib != b.LastCalib {
		return a.LastCalib < b.LastCalib
	}
	return a.seq < b.seq
}

func (q *FairQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *FairQueue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}

// FairnessBound returns the documented worst-case calibration age of any
// stream under the oldest-calibration-first policy, given N streams sharing
// K work-conserving slots whose longest single occupancy (detection plus any
// setting-switch overhead) is maxOccupancy, and a capture interval of
// frameInterval.
//
// Derivation: when a stream completes a calibration at time T it re-requests
// within one frame interval. Any other stream granted a slot after T leaves
// with a calibration newer than T, so strict oldest-first ordering means each
// of the N-1 other streams can be served at most once before this one — at
// most (N-1)/K × maxOccupancy of queueing on K work-conserving slots — plus
// one residual occupancy already in flight on the granting slot and the
// stream's own detection:
//
//	age ≤ (ceil((N-1)/K) + 2) × maxOccupancy + frameInterval
//
// The multi-stream determinism test (internal/sim) asserts every stream's
// observed calibration age against this bound.
func FairnessBound(streams, slots int, maxOccupancy, frameInterval time.Duration) time.Duration {
	if streams < 1 {
		streams = 1
	}
	if slots < 1 {
		slots = 1
	}
	rounds := (streams - 1 + slots - 1) / slots
	return time.Duration(rounds+2)*maxOccupancy + frameInterval
}
