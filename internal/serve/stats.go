package serve

import "sync/atomic"

// Stats are the per-stage counters of the staged serve pipeline
// (admit → queue → batch → detect → publish), in the style of stagedpipe's
// stats.go: one lock-free row per stage, updated inline by the pool and read
// at any time via Snapshot. A request's life maps onto the stages as
//
//	admit    Acquire called (Admitted), or refused by backpressure (Refused)
//	queue    entered the bounded wait queue (Queued) or abandoned while
//	         waiting (Cancelled)
//	batch    fused into a slot grant — Batches counts grants, Granted counts
//	         members, MaxBatch the largest fusion
//	detect   executing between grant and release (Executing, a level)
//	publish  released its slot (Released)
//
// The struct is clock-free like everything else in serve: stage *durations*
// are published by the clock-owning callers as the MetricSlotWait /
// MetricSlotExec histograms; these counters carry the flow accounting.
type Stats struct {
	admitted  atomic.Int64
	refused   atomic.Int64
	queued    atomic.Int64
	cancelled atomic.Int64
	batches   atomic.Int64
	granted   atomic.Int64
	maxBatch  atomic.Int64
	executing atomic.Int64
	released  atomic.Int64
}

// StatsSnapshot is one consistent-enough read of the stage counters (each
// cell individually atomic; cross-cell skew is at most the in-flight work).
type StatsSnapshot struct {
	// Admitted counts Acquire calls that passed the admit stage.
	Admitted int64 `json:"admitted"`
	// Refused counts Acquire calls bounced by queue backpressure.
	Refused int64 `json:"refused"`
	// Queued counts requests that entered the wait queue.
	Queued int64 `json:"queued"`
	// Cancelled counts waiters abandoned by their context while queued.
	Cancelled int64 `json:"cancelled"`
	// Batches counts slot grants (each drains one batch).
	Batches int64 `json:"batches"`
	// Granted counts requests granted across all batches.
	Granted int64 `json:"granted"`
	// MaxBatch is the largest number of requests one grant fused.
	MaxBatch int64 `json:"max_batch"`
	// Executing is the number of requests currently between grant and
	// release — the detect stage's level, at most Slots × batch size.
	Executing int64 `json:"executing"`
	// Released counts requests that completed the publish stage.
	Released int64 `json:"released"`
}

// MeanBatchFill is the average number of requests fused per slot grant
// (0 before the first grant).
func (s StatsSnapshot) MeanBatchFill() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Granted) / float64(s.Batches)
}

// Snapshot reads the current stage counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Admitted:  s.admitted.Load(),
		Refused:   s.refused.Load(),
		Queued:    s.queued.Load(),
		Cancelled: s.cancelled.Load(),
		Batches:   s.batches.Load(),
		Granted:   s.granted.Load(),
		MaxBatch:  s.maxBatch.Load(),
		Executing: s.executing.Load(),
		Released:  s.released.Load(),
	}
}

// noteBatch records one slot grant fusing n requests.
func (s *Stats) noteBatch(n int) {
	s.batches.Add(1)
	s.granted.Add(int64(n))
	s.executing.Add(int64(n))
	for {
		cur := s.maxBatch.Load()
		if int64(n) <= cur || s.maxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// noteRelease records one request leaving the detect stage.
func (s *Stats) noteRelease() {
	s.executing.Add(-1)
	s.released.Add(1)
}
