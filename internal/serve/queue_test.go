package serve

import (
	"testing"
	"time"
)

func TestFairQueueOldestCalibrationFirst(t *testing.T) {
	q := NewFairQueue(8)
	for _, r := range []Request{
		{Stream: "c", Index: 2, LastCalib: 300 * time.Millisecond},
		{Stream: "a", Index: 0, LastCalib: 100 * time.Millisecond},
		{Stream: "b", Index: 1, LastCalib: 200 * time.Millisecond},
	} {
		if !q.Push(r) {
			t.Fatalf("push %q refused below the bound", r.Stream)
		}
	}
	want := []string{"a", "b", "c"}
	for _, w := range want {
		r, ok := q.Pop()
		if !ok || r.Stream != w {
			t.Fatalf("Pop() = %q,%v, want %q (oldest calibration first)", r.Stream, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on an empty queue reported ok")
	}
}

func TestFairQueueFIFOAmongTies(t *testing.T) {
	q := NewFairQueue(8)
	for i := 0; i < 5; i++ {
		q.Push(Request{Index: i}) // all LastCalib zero
	}
	for i := 0; i < 5; i++ {
		r, ok := q.Pop()
		if !ok || r.Index != i {
			t.Fatalf("tie pop %d returned index %d (want FIFO order)", i, r.Index)
		}
	}
}

func TestFairQueueBoundBackpressure(t *testing.T) {
	q := NewFairQueue(2)
	if !q.Push(Request{Index: 0}) || !q.Push(Request{Index: 1}) {
		t.Fatal("pushes below the bound refused")
	}
	if q.Push(Request{Index: 2}) {
		t.Error("push above the bound accepted")
	}
	if q.Len() != 2 {
		t.Errorf("Len() = %d, want 2", q.Len())
	}
	q.Pop()
	if !q.Push(Request{Index: 3}) {
		t.Error("push refused after a pop freed space")
	}
}

func TestFairQueueInterleavedOrdering(t *testing.T) {
	// A stream that just calibrated re-enqueues with a newer timestamp and
	// must yield to every staler stream already waiting.
	q := NewFairQueue(8)
	q.Push(Request{Stream: "stale", Index: 0, LastCalib: time.Second})
	q.Push(Request{Stream: "fresh", Index: 1, LastCalib: 5 * time.Second})
	r, _ := q.Pop()
	if r.Stream != "stale" {
		t.Fatalf("first grant went to %q, want the stalest stream", r.Stream)
	}
	// stale completes at t=6s and re-enqueues; fresh (5s) must now win.
	q.Push(Request{Stream: "stale", Index: 2, LastCalib: 6 * time.Second})
	r, _ = q.Pop()
	if r.Stream != "fresh" {
		t.Fatalf("grant after recalibration went to %q, want the now-stalest stream", r.Stream)
	}
}

func TestFairnessBound(t *testing.T) {
	occ := 500 * time.Millisecond
	fi := 40 * time.Millisecond
	// Single stream, single slot: one residual + own occupancy.
	if got, want := FairnessBound(1, 1, occ, fi), 2*occ+fi; got != want {
		t.Errorf("FairnessBound(1,1) = %v, want %v", got, want)
	}
	// 8 streams, 2 slots: ceil(7/2)=4 rounds + residual + own.
	if got, want := FairnessBound(8, 2, occ, fi), 6*occ+fi; got != want {
		t.Errorf("FairnessBound(8,2) = %v, want %v", got, want)
	}
	// More slots than streams degenerates to the single-stream case.
	if got, want := FairnessBound(3, 8, occ, fi), 3*occ+fi; got != want {
		t.Errorf("FairnessBound(3,8) = %v, want %v", got, want)
	}
	// Degenerate inputs are clamped, not panicking.
	if FairnessBound(0, 0, occ, fi) <= 0 {
		t.Error("clamped FairnessBound not positive")
	}
}
