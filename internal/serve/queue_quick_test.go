package serve

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"adavp/internal/core"
)

// The property tests drive FairQueue through arbitrary operation
// interleavings — push (with colliding calibration timestamps and mixed
// settings), pop, batch drains of arbitrary capacity — and check it against
// a reference model: a stable sort on (LastCalib, arrival order). Any
// divergence in returned requests, refusal decisions or drain grouping is a
// scheduler-ordering bug that both the live pool and the virtual-clock
// scheduler would inherit.

// qop is one queue operation.
type qop struct {
	kind    int           // 0: push, 1: pop, 2: popbatch, 3: cancel
	calib   time.Duration // push: LastCalib (coarse, to force ties)
	setting core.Setting  // push: batch compatibility key
	max     int           // popbatch: capacity; cancel: victim selector
}

// qscript is a generated operation sequence over a small-bounded queue.
type qscript struct {
	bound int
	ops   []qop
}

// Generate implements quick.Generator.
func (qscript) Generate(rng *rand.Rand, size int) reflect.Value {
	settings := []core.Setting{core.Setting320, core.Setting512, core.Setting608}
	s := qscript{bound: 1 + rng.Intn(6), ops: make([]qop, 2+rng.Intn(60))}
	for i := range s.ops {
		op := qop{kind: rng.Intn(4)}
		switch op.kind {
		case 0:
			// Coarse timestamps so FIFO tie-breaking is actually exercised.
			op.calib = time.Duration(rng.Intn(4)) * 100 * time.Millisecond
			op.setting = settings[rng.Intn(len(settings))]
		case 2:
			op.max = rng.Intn(5) // includes the <1 clamp
		case 3:
			op.max = rng.Intn(16) // selects which queued entry to cancel
		}
		s.ops[i] = op
	}
	return reflect.ValueOf(s)
}

// modelReq is the reference model's request: Push order is its tiebreaker.
type modelReq struct {
	arrival int
	calib   time.Duration
	setting core.Setting
}

// modelPop removes and returns the model's (calib, arrival)-minimum.
func modelPop(m *[]modelReq) modelReq {
	best := 0
	for i, r := range *m {
		if r.calib < (*m)[best].calib || (r.calib == (*m)[best].calib && r.arrival < (*m)[best].arrival) {
			best = i
		}
	}
	r := (*m)[best]
	*m = append((*m)[:best], (*m)[best+1:]...)
	return r
}

// runScript replays a script on a real FairQueue and the reference model in
// lockstep, failing on the first divergence. Returns false (with a reason)
// on mismatch.
func runScript(t *testing.T, s qscript) bool {
	t.Helper()
	q := NewFairQueue(s.bound)
	var model []modelReq
	arrivals := 0
	cancelled := map[int]bool{} // arrival ids abandoned by their callers
	for opi, op := range s.ops {
		switch op.kind {
		case 0:
			r := Request{Stream: "s", Index: arrivals, Setting: op.setting, LastCalib: op.calib}
			got := q.Push(r)
			want := len(model) < s.bound
			if got != want {
				t.Logf("op %d: push admitted=%v, model says %v (len %d, bound %d)", opi, got, want, len(model), s.bound)
				return false
			}
			if got {
				model = append(model, modelReq{arrival: arrivals, calib: op.calib, setting: op.setting})
			}
			arrivals++
		case 1:
			got, ok := q.Pop()
			if ok != (len(model) > 0) {
				t.Logf("op %d: pop ok=%v with model len %d", opi, ok, len(model))
				return false
			}
			if !ok {
				continue
			}
			want := modelPop(&model)
			if got.Index != want.arrival || got.LastCalib != want.calib {
				t.Logf("op %d: pop returned arrival %d calib %v, model wants %d %v",
					opi, got.Index, got.LastCalib, want.arrival, want.calib)
				return false
			}
		case 2:
			got := q.PopBatchFunc(op.max, func(r Request) bool { return cancelled[r.Index] })
			// Model drain with cancelled entries transparent: walk the pop
			// order, dropping cancelled entries without counting them; the
			// first live request supplies the setting, then subsequent live
			// requests join while they share it, up to max (clamped ≥ 1).
			max := op.max
			if max < 1 {
				max = 1
			}
			var want []modelReq
			for len(want) < max && len(model) > 0 {
				// Peek the model's next pop without removing it yet.
				cp := make([]modelReq, len(model))
				copy(cp, model)
				peek := modelPop(&cp)
				if cancelled[peek.arrival] {
					modelPop(&model) // dropped by the skip predicate
					continue
				}
				if len(want) > 0 && peek.setting != want[0].setting {
					break
				}
				want = append(want, modelPop(&model))
			}
			if len(got) != len(want) {
				t.Logf("op %d: PopBatch(%d) drained %d, model wants %d", opi, op.max, len(got), len(want))
				return false
			}
			for i := range got {
				if cancelled[got[i].Index] {
					t.Logf("op %d: PopBatch returned cancelled arrival %d", opi, got[i].Index)
					return false
				}
				if got[i].Index != want[i].arrival || got[i].Setting != want[i].setting {
					t.Logf("op %d: PopBatch member %d is arrival %d setting %v, model wants %d %v",
						opi, i, got[i].Index, got[i].Setting, want[i].arrival, want[i].setting)
					return false
				}
				if got[i].Setting != got[0].Setting {
					t.Logf("op %d: PopBatch mixed settings %v and %v in one batch", opi, got[0].Setting, got[i].Setting)
					return false
				}
			}
		case 3:
			// Cancel one still-queued entry (a no-op on an empty queue). The
			// entry stays in both the queue and the model — cancellation only
			// marks it for the skip predicate, exactly like the live pool's
			// waiter bookkeeping.
			if len(model) > 0 {
				cancelled[model[op.max%len(model)].arrival] = true
			}
		}
		if q.Len() != len(model) {
			t.Logf("op %d: queue len %d, model len %d", opi, q.Len(), len(model))
			return false
		}
		if q.Len() > q.Bound() {
			t.Logf("op %d: queue len %d exceeds bound %d", opi, q.Len(), q.Bound())
			return false
		}
	}
	// Drain what's left: the remaining pops must come out in exactly the
	// model's (calib, arrival) order — the heap invariant, observed through
	// the public API.
	sort.Slice(model, func(i, j int) bool {
		if model[i].calib != model[j].calib {
			return model[i].calib < model[j].calib
		}
		return model[i].arrival < model[j].arrival
	})
	for i := 0; ; i++ {
		got, ok := q.Pop()
		if !ok {
			if i != len(model) {
				t.Logf("drain: queue emptied after %d, model holds %d", i, len(model))
				return false
			}
			return true
		}
		if i >= len(model) || got.Index != model[i].arrival {
			t.Logf("drain: position %d got arrival %d, want %d", i, got.Index, model[i].arrival)
			return false
		}
	}
}

// TestFairQueueQuickAgainstModel: arbitrary push/pop/batch-drain
// interleavings match the reference model operation for operation.
func TestFairQueueQuickAgainstModel(t *testing.T) {
	prop := func(s qscript) bool { return runScript(t, s) }
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestFairQueueQuickBatchDrainPrefix: for any queue content — including
// entries abandoned by cancelled callers — the batch drain returns a strict
// prefix of the live pop order (the sequence repeated Pops would return with
// cancelled entries filtered out). This is the property the generalized
// fairness bound's proof rests on: skipping dead entries must never let a
// younger live request overtake an older one.
func TestFairQueueQuickBatchDrainPrefix(t *testing.T) {
	prop := func(s qscript) bool {
		// Build two identical queues from the script's pushes only; the
		// script's cancel ops mark a subset of arrivals as abandoned.
		a, b := NewFairQueue(s.bound), NewFairQueue(s.bound)
		cancelled := map[int]bool{}
		n := 0
		for _, op := range s.ops {
			switch op.kind {
			case 0:
				r := Request{Stream: "s", Index: n, Setting: op.setting, LastCalib: op.calib}
				pa, pb := a.Push(r), b.Push(r)
				if pa != pb {
					return false
				}
				n++
			case 3:
				if n > 0 {
					cancelled[op.max%n] = true
				}
			}
		}
		skip := func(r Request) bool { return cancelled[r.Index] }
		// livePop pops q's next non-cancelled request, discarding dead ones.
		livePop := func(q *FairQueue) (Request, bool) {
			for {
				r, ok := q.Pop()
				if !ok {
					return Request{}, false
				}
				if !cancelled[r.Index] {
					return r, true
				}
			}
		}
		batch := a.PopBatchFunc(3, skip)
		for i, r := range batch {
			want, ok := livePop(b)
			if !ok || want.Index != r.Index {
				t.Logf("batch member %d is arrival %d, live pop order wants %d", i, r.Index, want.Index)
				return false
			}
		}
		// The remaining live requests must agree too: the drain took nothing
		// out of order and left nothing extra. (Dead entries are compared out
		// on both sides — they are never granted, so only the live sequence
		// matters.)
		for {
			ra, oka := livePop(a)
			rb, okb := livePop(b)
			if oka != okb {
				return false
			}
			if !oka {
				return true
			}
			if ra.Index != rb.Index {
				return false
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
