package serve

import "time"

// BatchGamma is the calibrated marginal cost of fusing one more compatible
// request into a batched inference, as a fraction of the single-request
// latency: a batch of b requests at the same setting completes in
//
//	BatchLatency(single, b) = single × (1 + BatchGamma×(b-1))
//
// The sub-linear shape is the standard GPU serving model — a fixed per-batch
// cost (weight loads, kernel launches, scheduling) is amortized across the
// batch while the per-item cost is dominated by memory-bound layers — and is
// what ApproxDet/Virtuoso-style contention schedulers exploit. 0.25 matches
// the calibrated single-request latency table in internal/core (DESIGN.md
// §16 documents the calibration): batch 4 costs 1.75× a single inference,
// i.e. 2.3× the per-request throughput of four serial grants.
const BatchGamma = 0.25

// BatchConfig parameterizes the batching executor shared by the live pool,
// the virtual-clock scheduler and the load generator.
type BatchConfig struct {
	// Size is B, the maximum number of compatible requests (same model
	// setting) one slot grant drains from the wait queue and executes as a
	// single batched inference. Values < 1 are treated as 1 — the degenerate
	// one-request-per-grant executor, byte-identical to the pre-batching
	// scheduler.
	Size int
	// Linger is the longest a partially-filled batch may hold its slot
	// waiting for more compatible arrivals before executing. Only schedulers
	// that own a clock honor it: the virtual-clock scheduler (sim.RunMulti)
	// and the load generator model it exactly, while the live Pool is
	// work-conserving and never lingers — serve owns no clock, so a live
	// grant executes whatever compatible prefix is queued at release time.
	// Zero (the default) disables lingering everywhere.
	Linger time.Duration
}

// withDefaults clamps the configuration into its valid range.
func (b BatchConfig) withDefaults() BatchConfig {
	if b.Size < 1 {
		b.Size = 1
	}
	if b.Linger < 0 {
		b.Linger = 0
	}
	return b
}

// BatchLatency returns the modeled duration of one batched inference: the
// longest member's single-request duration stretched by the calibrated
// sub-linear batch cost. b < 1 is clamped to 1, so BatchLatency(d, 1) == d
// exactly — the degenerate pin the parity tests assert.
func BatchLatency(single time.Duration, b int) time.Duration {
	if b < 1 {
		b = 1
	}
	return single + time.Duration(float64(single)*BatchGamma*float64(b-1))
}

// FairnessBoundBatched generalizes FairnessBound to the batching executor:
// the worst-case calibration age of any stream when N streams share K slots
// whose grants drain up to `batch` compatible requests each, with
// maxOccupancy the longest *single-request* occupancy (setting-switch
// overhead plus one inference) and linger the batching executor's fill
// timeout (zero for the work-conserving live pool).
//
// Derivation (DESIGN.md §16 has the full sketch): PopBatch drains a strict
// prefix of the oldest-calibration-first pop order, so every request granted
// before ours is one Pop would also have granted before ours — batching
// never reorders, and the PR 5 round-count argument survives verbatim: after
// our stream re-requests, each of the N-1 other streams is served at most
// once before us, costing ceil((N-1)/K) slot-grant spans on K
// work-conserving slots, plus one residual grant already in flight and our
// own. What changes is the worst-case span of one grant: a full batch
// stretches its slot to BatchLatency(maxOccupancy, batch), and a lingering
// executor may additionally hold the slot idle for up to linger before
// executing. Joining a batch only ever serves a request *earlier* than its
// solo grant, so the bound is safe for every mix of settings — the all-
// singleton worst case (total skew) is exactly the B=1 bound plus linger:
//
//	age ≤ (ceil((N-1)/K) + 2) × (BatchLatency(maxOccupancy, batch) + linger) + frameInterval
//
// With batch ≤ 1 and linger 0 this reduces term-for-term to FairnessBound,
// which the degenerate-pin test asserts as exact equality.
func FairnessBoundBatched(streams, slots, batch int, maxOccupancy, frameInterval, linger time.Duration) time.Duration {
	if streams < 1 {
		streams = 1
	}
	if slots < 1 {
		slots = 1
	}
	if linger < 0 {
		linger = 0
	}
	rounds := (streams - 1 + slots - 1) / slots
	span := BatchLatency(maxOccupancy, batch) + linger
	return time.Duration(rounds+2)*span + frameInterval
}
