package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"adavp/internal/core"
	"adavp/internal/detect"
	"adavp/internal/guard"
	"adavp/internal/obs"
	"adavp/internal/rt"
	"adavp/internal/track"
	"adavp/internal/video"
)

func TestPoolGrantAndRelease(t *testing.T) {
	p := NewPool(1, 4, nil)
	ctx := context.Background()
	rel1, err := p.Acquire(ctx, "a", core.Setting512, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Second acquire must block until the first releases.
	granted := make(chan struct{})
	go func() {
		rel2, err := p.Acquire(ctx, "b", core.Setting512, time.Second)
		if err != nil {
			t.Error(err)
			close(granted)
			return
		}
		rel2()
		close(granted)
	}()
	select {
	case <-granted:
		t.Fatal("second acquire succeeded while the slot was held")
	case <-time.After(20 * time.Millisecond):
	}
	rel1()
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("release never granted the waiter")
	}
	// Double release must be a no-op, not a second free slot.
	rel1()
	if p.QueueDepth() != 0 {
		t.Errorf("queue depth %d after drain", p.QueueDepth())
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1, obs.NewRegistry())
	ctx := context.Background()
	rel, err := p.Acquire(ctx, "holder", core.Setting512, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits the bound...
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		r, err := p.Acquire(ctx, "waiter", core.Setting512, time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		r()
	}()
	deadline := time.Now().Add(2 * time.Second)
	for p.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	// ...the next request must be refused, not queued.
	if _, err := p.Acquire(ctx, "overflow", core.Setting512, 2*time.Second); err != ErrQueueFull {
		t.Fatalf("Acquire over the bound returned %v, want ErrQueueFull", err)
	}
	rel()
	<-waiterDone
}

func TestPoolCancelledWaiterSkipped(t *testing.T) {
	p := NewPool(1, 4, nil)
	ctx := context.Background()
	rel, err := p.Acquire(ctx, "holder", core.Setting512, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue a waiter with the oldest calibration, then cancel it.
	cancelCtx, cancel := context.WithCancel(ctx)
	cancelledDone := make(chan error, 1)
	go func() {
		_, err := p.Acquire(cancelCtx, "doomed", core.Setting512, 0)
		cancelledDone <- err
	}()
	for p.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	// A second, staler-than-nobody waiter behind it.
	survivorDone := make(chan struct{})
	go func() {
		defer close(survivorDone)
		r, err := p.Acquire(ctx, "survivor", core.Setting512, time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		r()
	}()
	for p.QueueDepth() != 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-cancelledDone; err == nil {
		t.Fatal("cancelled Acquire returned nil error")
	}
	// Releasing must skip the cancelled front entry and grant the survivor.
	rel()
	select {
	case <-survivorDone:
	case <-time.After(2 * time.Second):
		t.Fatal("release never reached the waiter behind the cancelled entry")
	}
}

// liveSpecs builds n live stream specs over distinct scenarios and seeds.
func liveSpecs(n, frames int) []StreamSpec {
	kinds := []video.Kind{video.KindHighway, video.KindIntersection, video.KindCityStreet}
	specs := make([]StreamSpec, n)
	for i := range specs {
		id := fmt.Sprintf("s%d", i)
		specs[i] = StreamSpec{
			ID:    id,
			Video: video.GenerateKind(id, kinds[i%len(kinds)], uint64(i+1), frames),
			Config: rt.Config{
				TimeScale: 0.01,
				Seed:      uint64(100 + i),
			},
		}
	}
	return specs
}

// TestServeFourStreamsOneSlot is the live acceptance scenario: four streams
// contending for a single detector slot (run under -race by make race). All
// streams must complete with full-length outputs, nonzero cycles, and their
// per-stream series present in the shared registry.
func TestServeFourStreamsOneSlot(t *testing.T) {
	reg := obs.NewRegistry()
	specs := liveSpecs(4, 300)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := Run(ctx, specs, RunConfig{Slots: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge(obs.MetricStreams).Value(); got != 4 {
		t.Errorf("streams gauge = %v, want 4", got)
	}
	for i, s := range res.Streams {
		if s.Err != nil {
			t.Fatalf("stream %s failed: %v", s.ID, s.Err)
		}
		if len(s.Result.Outputs) != specs[i].Video.NumFrames() {
			t.Errorf("stream %s: %d outputs for %d frames", s.ID, len(s.Result.Outputs), specs[i].Video.NumFrames())
		}
		if s.Result.Cycles < 1 {
			t.Errorf("stream %s completed no detection cycles", s.ID)
		}
		ls := obs.L("stream", s.ID)
		if got := reg.Counter(obs.MetricCycles, ls).Value(); got != int64(s.Result.Cycles) {
			t.Errorf("stream %s: labeled cycles counter = %d, want %d", s.ID, got, s.Result.Cycles)
		}
		if got := reg.Histogram(obs.MetricSlotWait, obs.DefLatencyBuckets, ls).Count(); got < int64(s.Result.Cycles) {
			t.Errorf("stream %s: %d slot-wait samples for %d cycles", s.ID, got, s.Result.Cycles)
		}
	}
	// With one slot shared four ways, the queue must have been used; by the
	// end it must have drained.
	if got := reg.Gauge(obs.MetricQueueDepth).Value(); got != 0 {
		t.Errorf("queue depth gauge = %v after all streams finished, want 0", got)
	}
}

// alwaysPanicDetector drives the guard's escalation path on every call.
type alwaysPanicDetector struct{}

func (alwaysPanicDetector) Detect(core.Frame, core.Setting) []core.Detection {
	panic("serve test: injected detector panic")
}

// TestServeSharedDowngradeBudget: two streams with permanently panicking
// detectors share a downgrade budget of 1 — exactly one downgrade may happen
// across the whole run, not one per stream.
func TestServeSharedDowngradeBudget(t *testing.T) {
	specs := liveSpecs(2, 150)
	for i := range specs {
		specs[i].Config.Detector = alwaysPanicDetector{}
		specs[i].Config.Guard = guard.Config{
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := Run(ctx, specs, RunConfig{Slots: 1, DowngradeBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Streams {
		if s.Err != nil {
			t.Fatalf("stream %s failed: %v", s.ID, s.Err)
		}
		if s.Result.Faults.Panics == 0 {
			t.Errorf("stream %s observed no panics from an always-panicking detector", s.ID)
		}
		total += s.Result.Faults.Downgrades
	}
	if total != 1 {
		t.Errorf("%d downgrades across streams, want exactly 1 (shared budget)", total)
	}
}

// TestServeBackpressureDefers: a queue bound of 1 with four streams on one
// slot must refuse some requests — the refused streams defer and keep going.
func TestServeBackpressureDefers(t *testing.T) {
	specs := liveSpecs(4, 300)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := Run(ctx, specs, RunConfig{Slots: 1, QueueBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	deferred := 0
	for i, s := range res.Streams {
		if s.Err != nil {
			t.Fatalf("stream %s failed: %v", s.ID, s.Err)
		}
		if len(s.Result.Outputs) != specs[i].Video.NumFrames() {
			t.Errorf("stream %s: incomplete outputs under backpressure", s.ID)
		}
		deferred += s.Result.Deferred
	}
	if deferred == 0 {
		t.Error("queue bound 1 over 4 streams never deferred a detection")
	}
}

// TestServePipelinedPrefetchWhileWaiting is the serve half of the staged
// pipeline: with RunConfig.PipelineDepth applied to pixel-mode streams
// contending for one slot, a stream blocked in Pool.Acquire keeps its
// prefetch stage rendering — so frames complete their builds during the
// wait and are banked in the per-stream prefetched-while-waiting counter.
// The prefetcher never touches the pool, so the scheduling contract is
// unchanged: every stream still completes full-length outputs and the
// queue drains.
func TestServePipelinedPrefetchWhileWaiting(t *testing.T) {
	reg := obs.NewRegistry()
	kinds := []video.Kind{video.KindHighway, video.KindIntersection, video.KindCityStreet}
	specs := make([]StreamSpec, 3)
	for i := range specs {
		id := fmt.Sprintf("p%d", i)
		specs[i] = StreamSpec{
			ID:    id,
			Video: video.GenerateKind(id, kinds[i], uint64(i+1), 120),
			Config: rt.Config{
				TimeScale: 0.01,
				Seed:      uint64(200 + i),
				PixelMode: true,
				Detector:  detect.NewBlobDetector(),
				NewTracker: func(uint64) track.Tracker {
					return track.NewPixelTracker()
				},
			},
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := Run(ctx, specs, RunConfig{Slots: 1, Obs: reg, PipelineDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	banked := 0
	for i, s := range res.Streams {
		if s.Err != nil {
			t.Fatalf("stream %s failed: %v", s.ID, s.Err)
		}
		if len(s.Result.Outputs) != specs[i].Video.NumFrames() {
			t.Errorf("stream %s: %d outputs for %d frames", s.ID, len(s.Result.Outputs), specs[i].Video.NumFrames())
		}
		if got := reg.Counter(obs.MetricPrefetchedWaiting, obs.L("stream", s.ID)).Value(); got != int64(s.Result.PrefetchedWhileWaiting) {
			t.Errorf("stream %s: prefetched counter = %d, want %d", s.ID, got, s.Result.PrefetchedWhileWaiting)
		}
		banked += s.Result.PrefetchedWhileWaiting
	}
	if banked == 0 {
		t.Error("three pixel streams over one slot banked no prefetched frames while waiting")
	}
	if got := reg.Gauge(obs.MetricQueueDepth).Value(); got != 0 {
		t.Errorf("queue depth gauge = %v after all streams finished, want 0", got)
	}
}

// TestServeValidation: admission control rejects malformed stream sets.
func TestServeValidation(t *testing.T) {
	v := video.GenerateKind("v", video.KindHighway, 1, 50)
	good := StreamSpec{ID: "a", Video: v}
	cases := []struct {
		name    string
		streams []StreamSpec
		cfg     RunConfig
	}{
		{"empty set", nil, RunConfig{}},
		{"empty id", []StreamSpec{{Video: v}}, RunConfig{}},
		{"duplicate id", []StreamSpec{good, good}, RunConfig{}},
		{"nil video", []StreamSpec{{ID: "b"}}, RunConfig{}},
		{"admission cap", []StreamSpec{good, {ID: "b", Video: v}}, RunConfig{MaxStreams: 1}},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), tc.streams, tc.cfg); err == nil {
			t.Errorf("%s: Run accepted invalid input", tc.name)
		}
	}
}
