package serve

import (
	"context"
	"testing"
	"time"

	"adavp/internal/core"
)

// TestBatchLatencyIdentityAtOne pins the degenerate arithmetic: a batch of
// one costs exactly the single-request latency — bit-for-bit, not within a
// tolerance — because float64(d)*gamma*0 is exactly zero. This identity is
// what makes B=1 runs byte-identical to the pre-batching scheduler.
func TestBatchLatencyIdentityAtOne(t *testing.T) {
	for _, d := range []time.Duration{0, 1, 333 * time.Microsecond, 384*time.Millisecond + 7919, time.Hour} {
		if got := BatchLatency(d, 1); got != d {
			t.Errorf("BatchLatency(%v, 1) = %v, want identity", d, got)
		}
		if got := BatchLatency(d, 0); got != d {
			t.Errorf("BatchLatency(%v, 0) = %v; sizes < 1 must clamp to the identity", d, got)
		}
	}
}

// TestBatchLatencySubLinear: fusing must cost more than one request and
// less than serial execution, monotonically in the batch size.
func TestBatchLatencySubLinear(t *testing.T) {
	single := 384 * time.Millisecond
	prev := single
	for b := 2; b <= 16; b++ {
		got := BatchLatency(single, b)
		if got <= prev {
			t.Errorf("BatchLatency(%v, %d) = %v not above batch %d's %v", single, b, got, b-1, prev)
		}
		if serial := time.Duration(b) * single; got >= serial {
			t.Errorf("BatchLatency(%v, %d) = %v not below serial %v", single, b, got, serial)
		}
		prev = got
	}
}

// TestFairnessBoundBatchedDegenerates pins the generalized bound to the
// PR 5 bound as exact equality at B=1 with no linger, across a grid of
// topologies.
func TestFairnessBoundBatchedDegenerates(t *testing.T) {
	occs := []time.Duration{10 * time.Millisecond, 384 * time.Millisecond, 2 * time.Second}
	fi := 33 * time.Millisecond
	for streams := 1; streams <= 12; streams++ {
		for slots := 1; slots <= 4; slots++ {
			for _, occ := range occs {
				got := FairnessBoundBatched(streams, slots, 1, occ, fi, 0)
				want := FairnessBound(streams, slots, occ, fi)
				if got != want {
					t.Fatalf("FairnessBoundBatched(%d, %d, 1, %v, %v, 0) = %v, want FairnessBound's %v",
						streams, slots, occ, fi, got, want)
				}
			}
		}
	}
	// And the generalized bound must strictly grow with batch size and
	// linger — a fused or lingering grant can only hold the slot longer.
	base := FairnessBoundBatched(8, 2, 1, 384*time.Millisecond, fi, 0)
	if b4 := FairnessBoundBatched(8, 2, 4, 384*time.Millisecond, fi, 0); b4 <= base {
		t.Errorf("bound at B=4 (%v) not above B=1 (%v)", b4, base)
	}
	if bl := FairnessBoundBatched(8, 2, 1, 384*time.Millisecond, fi, 5*time.Millisecond); bl <= base {
		t.Errorf("bound with linger (%v) not above zero-linger (%v)", bl, base)
	}
}

// acquireAsync starts an Acquire in a goroutine and reports its outcome.
type grant struct {
	release func()
	err     error
}

func acquireAsync(p *Pool, setting core.Setting, calib time.Duration) chan grant {
	ch := make(chan grant, 1)
	go func() {
		r, err := p.Acquire(context.Background(), "s", setting, calib)
		ch <- grant{release: r, err: err}
	}()
	return ch
}

// waitDepth polls until the pool's queue holds n waiters (the only
// wall-clock dependence the test has: waiting for goroutines to block).
func waitDepth(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueDepth() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, p.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolBatchedGrant: on a one-slot pool with batch capacity 2, two
// compatible waiters are granted together when the slot frees, and the slot
// moves on only after the *last* member releases.
func TestPoolBatchedGrant(t *testing.T) {
	p := NewBatchPool(1, 8, BatchConfig{Size: 2}, nil)
	first, err := p.Acquire(context.Background(), "warm", core.Setting512, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := acquireAsync(p, core.Setting512, 100*time.Millisecond)
	b := acquireAsync(p, core.Setting512, 200*time.Millisecond)
	waitDepth(t, p, 2)

	first() // free the slot: both compatible waiters must be granted as one batch
	ga, gb := <-a, <-b
	if ga.err != nil || gb.err != nil {
		t.Fatalf("batched grant errored: %v / %v", ga.err, gb.err)
	}
	if st := p.Stats(); st.MaxBatch != 2 || st.Batches != 2 || st.Granted != 3 {
		t.Fatalf("stats after fused grant: %+v, want 2 batches, max 2, 3 granted", st)
	}

	// A third request must queue: the slot is held by the group.
	c := acquireAsync(p, core.Setting512, 300*time.Millisecond)
	waitDepth(t, p, 1)
	ga.release() // first member out; the group still holds the slot
	select {
	case g := <-c:
		if g.err == nil {
			g.release()
		}
		t.Fatal("third request granted before the batch's last member released")
	case <-time.After(50 * time.Millisecond):
	}
	gb.release() // last member out: the slot hands over
	gc := <-c
	if gc.err != nil {
		t.Fatal(gc.err)
	}
	gc.release()
	if st := p.Stats(); st.Executing != 0 || st.Released != st.Granted {
		t.Fatalf("flow did not drain: %+v", st)
	}
}

// TestPoolBatchSettingSkewSplitsGrants: waiters at different settings never
// fuse — the drain stops at the first incompatible head, so the second
// waiter is granted only after the first batch fully releases.
func TestPoolBatchSettingSkewSplitsGrants(t *testing.T) {
	p := NewBatchPool(1, 8, BatchConfig{Size: 4}, nil)
	first, err := p.Acquire(context.Background(), "warm", core.Setting512, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := acquireAsync(p, core.Setting512, 100*time.Millisecond)
	b := acquireAsync(p, core.Setting320, 200*time.Millisecond)
	waitDepth(t, p, 2)
	first()
	ga := <-a
	if ga.err != nil {
		t.Fatal(ga.err)
	}
	select {
	case g := <-b:
		if g.err == nil {
			g.release()
		}
		t.Fatal("incompatible setting fused into the batch")
	case <-time.After(50 * time.Millisecond):
	}
	ga.release()
	gb := <-b
	if gb.err != nil {
		t.Fatal(gb.err)
	}
	gb.release()
	if st := p.Stats(); st.MaxBatch != 1 {
		t.Fatalf("MaxBatch = %d; skewed settings must stay singleton grants", st.MaxBatch)
	}
}

// TestPoolBatchFillsPastCancelledWaiter pins the PopBatch underfill fix: a
// cancelled waiter sitting *inside* the same-setting prefix must not consume
// batch capacity. With batch capacity 3 and three live compatible waiters
// queued around a cancelled one, the freed slot must fuse all three — the
// pre-fix drain counted the dead entry toward the capacity and granted only
// two.
func TestPoolBatchFillsPastCancelledWaiter(t *testing.T) {
	p := NewBatchPool(1, 8, BatchConfig{Size: 3}, nil)
	first, err := p.Acquire(context.Background(), "warm", core.Setting512, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := acquireAsync(p, core.Setting512, 100*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	dead := make(chan grant, 1)
	go func() {
		r, err := p.Acquire(ctx, "dead", core.Setting512, 200*time.Millisecond)
		dead <- grant{release: r, err: err}
	}()
	waitDepth(t, p, 2)
	b := acquireAsync(p, core.Setting512, 300*time.Millisecond)
	c := acquireAsync(p, core.Setting512, 400*time.Millisecond)
	waitDepth(t, p, 4)
	cancel()
	if g := <-dead; g.err == nil {
		t.Fatal("cancelled Acquire returned a grant")
	}
	first()
	ga, gb, gc := <-a, <-b, <-c
	if ga.err != nil || gb.err != nil || gc.err != nil {
		t.Fatalf("grants errored: %v / %v / %v", ga.err, gb.err, gc.err)
	}
	if st := p.Stats(); st.MaxBatch != 3 {
		t.Fatalf("MaxBatch = %d, want 3: the cancelled waiter consumed batch capacity", st.MaxBatch)
	}
	ga.release()
	gb.release()
	gc.release()
	if st := p.Stats(); st.Executing != 0 || st.Released != st.Granted {
		t.Fatalf("flow did not drain: %+v", st)
	}
}

// TestPoolBatchScansPastIncompatibleCancelled: a cancelled waiter whose
// setting differs from the batch's must not terminate the drain — it is dead,
// so scanning past it cannot reorder any live grant. The pre-fix drain
// stopped at the incompatible head and granted a singleton.
func TestPoolBatchScansPastIncompatibleCancelled(t *testing.T) {
	p := NewBatchPool(1, 8, BatchConfig{Size: 4}, nil)
	first, err := p.Acquire(context.Background(), "warm", core.Setting512, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := acquireAsync(p, core.Setting512, 100*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	dead := make(chan grant, 1)
	go func() {
		r, err := p.Acquire(ctx, "dead", core.Setting320, 200*time.Millisecond)
		dead <- grant{release: r, err: err}
	}()
	waitDepth(t, p, 2)
	b := acquireAsync(p, core.Setting512, 300*time.Millisecond)
	waitDepth(t, p, 3)
	cancel()
	if g := <-dead; g.err == nil {
		t.Fatal("cancelled Acquire returned a grant")
	}
	first()
	ga, gb := <-a, <-b
	if ga.err != nil || gb.err != nil {
		t.Fatalf("grants errored: %v / %v", ga.err, gb.err)
	}
	if st := p.Stats(); st.MaxBatch != 2 {
		t.Fatalf("MaxBatch = %d, want 2: the dead incompatible entry terminated the drain", st.MaxBatch)
	}
	ga.release()
	gb.release()
}

// TestPoolBatchedCancelSkipped: a waiter whose context dies while queued is
// skipped at grant time without consuming batch capacity or wedging the
// group accounting.
func TestPoolBatchedCancelSkipped(t *testing.T) {
	p := NewBatchPool(1, 8, BatchConfig{Size: 2}, nil)
	first, err := p.Acquire(context.Background(), "warm", core.Setting512, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	dead := make(chan grant, 1)
	go func() {
		r, err := p.Acquire(ctx, "dead", core.Setting512, 100*time.Millisecond)
		dead <- grant{release: r, err: err}
	}()
	waitDepth(t, p, 1)
	cancel()
	if g := <-dead; g.err == nil {
		t.Fatal("cancelled Acquire returned a grant")
	}
	live := acquireAsync(p, core.Setting512, 200*time.Millisecond)
	waitDepth(t, p, 2) // cancelled entry still occupies the queue until popped
	first()
	gl := <-live
	if gl.err != nil {
		t.Fatal(gl.err)
	}
	gl.release()
	st := p.Stats()
	if st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
	if st.Executing != 0 || st.Released != st.Granted {
		t.Fatalf("flow did not drain around the cancelled waiter: %+v", st)
	}
}
