package guard

import (
	"sync"
	"testing"

	"adavp/internal/obs"
)

// TestEscalationBudgetSharedAcrossSupervisors: two supervisors sharing a
// budget of 2 get exactly two downgrades between them, then none.
func TestEscalationBudgetSharedAcrossSupervisors(t *testing.T) {
	b := NewEscalationBudget(2)
	s1 := New(Config{Budget: b, Stream: "s1"})
	s2 := New(Config{Budget: b, Stream: "s2"})
	granted := 0
	for _, s := range []*Supervisor{s1, s2, s1, s2} {
		if s.AllowDowngrade() {
			granted++
		}
	}
	if granted != 2 {
		t.Errorf("%d downgrades granted across supervisors, want 2 (shared budget)", granted)
	}
	if b.Remaining() != 0 {
		t.Errorf("Remaining() = %d, want 0", b.Remaining())
	}
}

// TestEscalationBudgetNilUnlimited: a supervisor without a budget always
// grants (the single-stream default).
func TestEscalationBudgetNilUnlimited(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 10; i++ {
		if !s.AllowDowngrade() {
			t.Fatalf("downgrade %d denied without a budget", i)
		}
	}
}

// TestEscalationBudgetConcurrent: concurrent Take calls never over-grant
// (run under -race by make race).
func TestEscalationBudgetConcurrent(t *testing.T) {
	const cap, workers, tries = 64, 8, 100
	b := NewEscalationBudget(cap)
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < tries; i++ {
				if b.Take() {
					n++
				}
			}
			mu.Lock()
			total += int64(n)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != cap {
		t.Errorf("%d downgrades granted concurrently, want exactly %d", total, cap)
	}
	if b.Remaining() != 0 {
		t.Errorf("Remaining() = %d, want 0", b.Remaining())
	}
}

// TestStreamLabeledSeries: a supervisor with a stream id publishes its
// health gauge and counters under stream=<id>, keeping N streams sharing a
// registry distinguishable; journal events carry the id in the component.
func TestStreamLabeledSeries(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Obs: reg, Stream: "s3"})
	s.ObserveFault(ComponentDetector, Timeout, 0, 1, 0)
	if got := reg.Gauge(obs.MetricGuardHealth, obs.L("stream", "s3")).Value(); got != float64(Degraded) {
		t.Errorf("labeled health gauge = %v, want %v", got, float64(Degraded))
	}
	c := reg.Counter(obs.MetricGuardFaults,
		obs.L("component", ComponentDetector), obs.L("kind", "timeout"), obs.L("stream", "s3"))
	if c.Value() != 1 {
		t.Errorf("labeled fault counter = %d, want 1", c.Value())
	}
	snap := reg.Snapshot()
	if len(snap.Events) != 1 || snap.Events[0].Component != "detector@s3" {
		t.Errorf("journal events = %+v, want one event with component detector@s3", snap.Events)
	}
}
