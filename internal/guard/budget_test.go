package guard

import (
	"sync"
	"testing"
	"time"

	"adavp/internal/obs"
)

// TestEscalationBudgetSharedAcrossSupervisors: two supervisors sharing a
// budget of 2 get exactly two downgrades between them, then none.
func TestEscalationBudgetSharedAcrossSupervisors(t *testing.T) {
	b := NewEscalationBudget(2)
	s1 := New(Config{Budget: b, Stream: "s1"})
	s2 := New(Config{Budget: b, Stream: "s2"})
	granted := 0
	for _, s := range []*Supervisor{s1, s2, s1, s2} {
		if s.AllowDowngrade(0) {
			granted++
		}
	}
	if granted != 2 {
		t.Errorf("%d downgrades granted across supervisors, want 2 (shared budget)", granted)
	}
	if b.Remaining() != 0 {
		t.Errorf("Remaining() = %d, want 0", b.Remaining())
	}
}

// TestEscalationBudgetNilUnlimited: a supervisor without a budget always
// grants (the single-stream default).
func TestEscalationBudgetNilUnlimited(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 10; i++ {
		if !s.AllowDowngrade(0) {
			t.Fatalf("downgrade %d denied without a budget", i)
		}
	}
}

// TestEscalationBudgetConcurrent: concurrent Take calls never over-grant
// (run under -race by make race).
func TestEscalationBudgetConcurrent(t *testing.T) {
	const cap, workers, tries = 64, 8, 100
	b := NewEscalationBudget(cap)
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < tries; i++ {
				if b.Take() {
					n++
				}
			}
			mu.Lock()
			total += int64(n)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != cap {
		t.Errorf("%d downgrades granted concurrently, want exactly %d", total, cap)
	}
	if b.Remaining() != 0 {
		t.Errorf("Remaining() = %d, want 0", b.Remaining())
	}
}

// TestEscalationBudgetRefill: a refillable budget restores one grant per
// interval of reported pipeline time, saturates at capacity, and treats
// non-monotone time as a no-op.
func TestEscalationBudgetRefill(t *testing.T) {
	b := NewEscalationBudgetWithRefill(2, time.Second)
	if !b.Take() || !b.Take() {
		t.Fatal("initial capacity not grantable")
	}
	if b.Take() {
		t.Fatal("over-granted past capacity")
	}
	b.Advance(500 * time.Millisecond) // under one interval: no credit
	if got := b.Remaining(); got != 0 {
		t.Errorf("Remaining after partial interval = %d, want 0", got)
	}
	b.Advance(2500 * time.Millisecond) // 2.5s elapsed: two grants back
	if got := b.Remaining(); got != 2 {
		t.Errorf("Remaining after 2.5 intervals = %d, want 2", got)
	}
	b.Advance(100 * time.Hour) // saturation: never exceeds capacity
	if got := b.Remaining(); got != 2 {
		t.Errorf("Remaining after huge advance = %d, want 2 (saturated)", got)
	}
	b.Advance(time.Second) // stale time: monotone guard makes it a no-op
	if got := b.Remaining(); got != 2 {
		t.Errorf("Remaining after stale advance = %d, want 2", got)
	}
	if !b.TakeAt(100*time.Hour + time.Second) {
		t.Error("TakeAt denied with capacity available")
	}
	if got := b.Remaining(); got != 1 {
		t.Errorf("Remaining after TakeAt = %d, want 1", got)
	}
}

// TestEscalationBudgetRefillPartialCredit: fractional intervals carry over —
// advancing twice by 0.6 intervals credits one grant, not zero.
func TestEscalationBudgetRefillPartialCredit(t *testing.T) {
	b := NewEscalationBudgetWithRefill(3, time.Second)
	for i := 0; i < 3; i++ {
		b.Take()
	}
	b.Advance(600 * time.Millisecond)
	b.Advance(1200 * time.Millisecond)
	if got := b.Remaining(); got != 1 {
		t.Errorf("Remaining after 1.2s in two steps = %d, want 1", got)
	}
}

// TestEscalationBudgetRefillConcurrent: concurrent TakeAt/Advance callers
// never over-grant beyond capacity plus credited refill (run under -race by
// make race).
func TestEscalationBudgetRefillConcurrent(t *testing.T) {
	const capacity, workers, tries = 8, 8, 200
	// One grant refills per second of pipeline time; workers report times up
	// to tries seconds, so at most capacity + tries - 1 grants can exist.
	b := NewEscalationBudgetWithRefill(capacity, time.Second)
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 1; i <= tries; i++ {
				if b.TakeAt(time.Duration(i) * time.Second) {
					n++
				}
			}
			mu.Lock()
			total += int64(n)
			mu.Unlock()
		}()
	}
	wg.Wait()
	max := int64(capacity + tries - 1)
	if total > max {
		t.Errorf("%d grants across workers, want <= %d (capacity + refill)", total, max)
	}
	if total < capacity {
		t.Errorf("%d grants, want >= %d (initial capacity)", total, capacity)
	}
	if rem := b.Remaining(); rem < 0 || rem > capacity {
		t.Errorf("Remaining = %d, outside [0,%d]", rem, capacity)
	}
}

// TestStreamLabeledSeries: a supervisor with a stream id publishes its
// health gauge and counters under stream=<id>, keeping N streams sharing a
// registry distinguishable; journal events carry the id in the component.
func TestStreamLabeledSeries(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Obs: reg, Stream: "s3"})
	s.ObserveFault(ComponentDetector, Timeout, 0, 1, 0)
	if got := reg.Gauge(obs.MetricGuardHealth, obs.L("stream", "s3")).Value(); got != float64(Degraded) {
		t.Errorf("labeled health gauge = %v, want %v", got, float64(Degraded))
	}
	c := reg.Counter(obs.MetricGuardFaults,
		obs.L("component", ComponentDetector), obs.L("kind", "timeout"), obs.L("stream", "s3"))
	if c.Value() != 1 {
		t.Errorf("labeled fault counter = %d, want 1", c.Value())
	}
	snap := reg.Snapshot()
	if len(snap.Events) != 1 || snap.Events[0].Component != "detector@s3" {
		t.Errorf("journal events = %+v, want one event with component detector@s3", snap.Events)
	}
}
