// Package guard is the supervision layer of the live pipeline: it runs
// detector calls in supervised goroutines with panic recovery and a watchdog
// deadline derived from the calibrated per-setting latency, and drives a
// Healthy → Degraded → Recovering health state machine that decides how the
// pipeline reacts to faults — reuse the previous calibration, retry with
// capped exponential backoff, escalate to a smaller/faster model setting,
// and return to normal once enough consecutive cycles succeed.
//
// The supervisor is engine-agnostic: internal/rt owns the policy of *what*
// to do on each Decision (which setting to fall back to, what result to
// display); guard owns the bookkeeping — outcomes, health transitions,
// backoff schedule, fault/recovery counters and the event log exported into
// the run trace.
package guard

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"adavp/internal/core"
	"adavp/internal/obs"
	"adavp/internal/trace"
)

// Health is the pipeline's supervision state.
type Health int

// Health states.
const (
	// Healthy: recent cycles completed normally.
	Healthy Health = iota
	// Degraded: the supervisor observed a fault (timeout, panic, empty
	// burst) and the pipeline is running on fallbacks.
	Degraded
	// Recovering: cycles are succeeding again but the streak is shorter
	// than Config.RecoverAfter.
	Recovering
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Recovering:
		return "recovering"
	default:
		return "health(?)"
	}
}

// Outcome classifies one supervised call.
type Outcome int

// Outcomes.
const (
	// OK: the call returned within its deadline.
	OK Outcome = iota
	// Timeout: the watchdog fired; the call's goroutine was abandoned.
	Timeout
	// Panicked: the call panicked and was recovered.
	Panicked
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Timeout:
		return "timeout"
	case Panicked:
		return "panic"
	default:
		return "outcome(?)"
	}
}

// Components, for event records.
const (
	ComponentDetector = "detector"
	ComponentTracker  = "tracker"
)

// Config tunes the supervision layer. The zero value takes the documented
// defaults.
type Config struct {
	// WatchdogFactor scales the calibrated mean detection latency into the
	// watchdog deadline (deadline = mean × factor, floored at MinDeadline).
	// Default: 8.
	WatchdogFactor float64
	// MinDeadline floors the watchdog deadline in wall-clock time — emulated
	// Detect calls return in microseconds, so the calibrated budget scaled
	// by a small TimeScale would otherwise be uselessly tight. Default: 100ms.
	MinDeadline time.Duration
	// EmptyBurst is the number of consecutive empty detection results that
	// counts as a fault (legitimately empty scenes make short empty runs
	// normal). 0 disables empty-burst detection. Default: 8.
	EmptyBurst int
	// RecoverAfter is the number of consecutive successful cycles required
	// to return from Recovering to Healthy. Default: 3.
	RecoverAfter int
	// MaxRetries bounds the in-cycle retries after a hard fault. Default: 2.
	MaxRetries int
	// DowngradeAfter is the number of consecutive hard faults after which
	// the supervisor recommends escalating to a smaller/faster model
	// setting. Default: 2.
	DowngradeAfter int
	// BackoffBase is the first retry backoff (wall clock); it doubles per
	// consecutive fault up to BackoffMax. Defaults: 5ms, 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Obs, when set, receives the supervisor's telemetry: the health gauge,
	// fault/action counters, and every event-log entry mirrored into the
	// journal (internal/obs schema). Nil disables publishing.
	Obs *obs.Registry
	// Stream names the stream this supervisor belongs to in a multi-stream
	// serving run: every published series gains a stream=<id> label and
	// journal events carry the id, so N streams sharing one registry stay
	// distinguishable. Empty (single-stream) leaves the schema unchanged.
	Stream string
	// Budget, when set, is an escalation budget shared with the other
	// streams' supervisors: a model-setting downgrade may only be applied
	// while the budget has capacity left (AllowDowngrade). Nil is unlimited.
	Budget *EscalationBudget
}

// WithDefaults returns the config with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.WatchdogFactor <= 0 {
		c.WatchdogFactor = 8
	}
	if c.MinDeadline <= 0 {
		c.MinDeadline = 100 * time.Millisecond
	}
	if c.EmptyBurst == 0 {
		c.EmptyBurst = 8
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.DowngradeAfter <= 0 {
		c.DowngradeAfter = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	return c
}

// Stats are the supervisor's fault/recovery counters.
type Stats struct {
	// Timeouts and Panics count hard faults observed on supervised calls
	// (both components).
	Timeouts int
	Panics   int
	// EmptyBursts counts runs of Config.EmptyBurst consecutive empty
	// detection results.
	EmptyBursts int
	// Retries counts in-cycle re-attempts after hard faults.
	Retries int
	// Downgrades counts model-setting escalations to a smaller setting.
	Downgrades int
	// Recoveries counts Degraded/Recovering → Healthy transitions.
	Recoveries int
	// Abandoned counts call goroutines left behind by the watchdog.
	Abandoned int
}

// Faults returns the total hard-fault count.
func (s Stats) Faults() int { return s.Timeouts + s.Panics + s.EmptyBursts }

// EscalationBudget caps the total number of model-setting downgrades a group
// of supervisors may apply. In a multi-stream serving run every stream's
// supervisor shares one budget, so a correlated fault burst (an overloaded
// accelerator times out for everyone at once) cannot stampede every stream
// onto the smallest model — the first takers downgrade, the rest ride out
// the burst on retries and held calibrations. A nil budget is unlimited.
//
// A budget built with NewEscalationBudgetWithRefill additionally recovers
// capacity over time: one grant is restored per refill interval of elapsed
// pipeline time, saturating at the initial capacity. Refill is clock-free —
// time is passed in by the caller (Advance/TakeAt), wall time in rt, virtual
// time in sim — so refillable budgets stay deterministic where the engine is.
type EscalationBudget struct {
	remaining atomic.Int64

	// Refill state; every==0 means the legacy one-shot budget.
	mu         sync.Mutex
	capacity   int64
	every      time.Duration
	lastCredit time.Duration // pipeline time refill was last accounted to
}

// NewEscalationBudget returns a budget allowing n downgrades in total
// across every supervisor that shares it. n <= 0 yields an exhausted budget.
func NewEscalationBudget(n int) *EscalationBudget {
	b := &EscalationBudget{}
	if n > 0 {
		b.remaining.Store(int64(n))
	}
	return b
}

// NewEscalationBudgetWithRefill returns a budget of n grants that restores
// one grant per `every` of elapsed pipeline time (as reported to Advance or
// TakeAt), saturating at n. every <= 0 yields a plain one-shot budget.
func NewEscalationBudgetWithRefill(n int, every time.Duration) *EscalationBudget {
	b := NewEscalationBudget(n)
	if n > 0 && every > 0 {
		b.capacity = int64(n)
		b.every = every
	}
	return b
}

// Advance credits refill for pipeline time now: one grant per full refill
// interval since the last credit, saturating at capacity. Time is monotone —
// an earlier (or equal) now than previously seen is a no-op, which makes
// concurrent callers with slightly skewed clocks safe. No-op on nil or
// non-refillable budgets.
func (b *EscalationBudget) Advance(now time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.every <= 0 || now <= b.lastCredit {
		b.mu.Unlock()
		return
	}
	units := int64((now - b.lastCredit) / b.every)
	if units <= 0 {
		b.mu.Unlock()
		return
	}
	b.lastCredit += time.Duration(units) * b.every
	capacity := b.capacity
	b.mu.Unlock()
	// Credit outside the refill lock: Take's CAS loop and this one never
	// deadlock, and a concurrent Take between Load and CAS just retries.
	for {
		r := b.remaining.Load()
		nr := r + units
		if nr > capacity {
			nr = capacity
		}
		if nr <= r {
			return // already saturated
		}
		if b.remaining.CompareAndSwap(r, nr) {
			return
		}
	}
}

// TakeAt credits refill up to pipeline time now, then takes one grant.
func (b *EscalationBudget) TakeAt(now time.Duration) bool {
	if b == nil {
		return true
	}
	b.Advance(now)
	return b.Take()
}

// Take consumes one downgrade if capacity remains, reporting whether it was
// granted. A nil budget always grants. Safe for concurrent use.
func (b *EscalationBudget) Take() bool {
	if b == nil {
		return true
	}
	for {
		r := b.remaining.Load()
		if r <= 0 {
			return false
		}
		if b.remaining.CompareAndSwap(r, r-1) {
			return true
		}
	}
}

// Remaining returns the downgrades left (a nil budget reports -1, unlimited).
func (b *EscalationBudget) Remaining() int {
	if b == nil {
		return -1
	}
	return int(b.remaining.Load())
}

// Decision is the supervisor's recommendation after a fault.
type Decision struct {
	// Backoff is how long to wait before retrying the cycle.
	Backoff time.Duration
	// Downgrade recommends escalating to a smaller/faster model setting.
	Downgrade bool
}

// Supervisor owns the health state machine and fault accounting of one run.
// It is safe for concurrent use by the detector and tracker goroutines.
type Supervisor struct {
	cfg Config

	mu          sync.Mutex
	health      Health
	okStreak    int
	emptyStreak int
	failStreak  int
	stats       Stats
	events      []trace.FaultEvent
}

// New returns a supervisor with the given (defaulted) config.
func New(cfg Config) *Supervisor {
	s := &Supervisor{cfg: cfg.WithDefaults()}
	s.cfg.Obs.Gauge(obs.MetricGuardHealth, s.cfg.obsLabels()...).Set(float64(Healthy))
	return s
}

// AllowDowngrade reports whether a recommended model-setting downgrade may
// actually be applied, consuming one unit of the shared escalation budget
// when granted. at is the pipeline time of the triggering fault; refillable
// budgets credit recovery up to it first. Callers must check that a smaller
// setting exists *first* (core.NextSmaller): a stream already at the
// smallest setting has nothing to escalate to, and asking anyway would burn
// budget other streams need. With no budget configured every downgrade is
// allowed.
func (s *Supervisor) AllowDowngrade(at time.Duration) bool {
	return s.cfg.Budget.TakeAt(at)
}

// Config returns the resolved configuration.
func (s *Supervisor) Config() Config { return s.cfg }

// Health returns the current health state.
func (s *Supervisor) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// Stats returns a snapshot of the counters.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Events returns a copy of the fault/recovery event log, in order.
func (s *Supervisor) Events() []trace.FaultEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]trace.FaultEvent, len(s.events))
	copy(out, s.events)
	return out
}

// obsLabels appends the stream label (multi-stream runs) to ls; with no
// stream configured the series keep the single-stream schema.
func (c Config) obsLabels(ls ...obs.Label) []obs.Label {
	if c.Stream != "" {
		ls = append(ls, obs.L("stream", c.Stream))
	}
	return ls
}

// event appends one record and mirrors it into the observability layer;
// callers hold s.mu.
func (s *Supervisor) event(component, kind, action string, cycle, frame int, at time.Duration) {
	s.events = append(s.events, trace.FaultEvent{
		Component: component, Kind: kind, Action: action,
		Cycle: cycle, Frame: frame, At: at,
	})
	journalComponent := component
	if s.cfg.Stream != "" {
		journalComponent = component + "@" + s.cfg.Stream
	}
	s.cfg.Obs.Record(at, journalComponent, kind, action)
	switch action {
	case "timeout", "panic", "empty-burst":
		s.cfg.Obs.Counter(obs.MetricGuardFaults, s.cfg.obsLabels(obs.L("component", component), obs.L("kind", action))...).Inc()
	case "retry", "downgrade", "recovered":
		s.cfg.Obs.Counter(obs.MetricGuardActions, s.cfg.obsLabels(obs.L("action", action))...).Inc()
	}
}

// setHealth transitions the state machine and publishes the gauge; callers
// hold s.mu.
func (s *Supervisor) setHealth(h Health) {
	s.health = h
	s.cfg.Obs.Gauge(obs.MetricGuardHealth, s.cfg.obsLabels()...).Set(float64(h))
}

// callResult carries one supervised call's outcome across the goroutine.
type callResult struct {
	dets     []core.Detection
	panicked bool
}

// Call runs fn in a supervised goroutine: panics are recovered and reported
// as Panicked, and a call that outlives deadline is abandoned (the goroutine
// keeps draining in the background; its eventual result is discarded) and
// reported as Timeout. The context passed to fn is cancelled the moment the
// watchdog abandons the call (and, harmlessly, after a completed call
// returns), so fn can tell "my result will be used" from "I am a zombie and
// a retry may already be running" — which is what lets pooled resources be
// dropped instead of double-shared. Because abandoned calls may still be
// executing when the caller retries, fn must tolerate overlapping
// invocations.
func (s *Supervisor) Call(deadline time.Duration, fn func(ctx context.Context) []core.Detection) ([]core.Detection, Outcome) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan callResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- callResult{panicked: true}
			}
		}()
		ch <- callResult{dets: fn(ctx)}
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.panicked {
			return nil, Panicked
		}
		return r.dets, OK
	case <-timer.C:
		// The deferred cancel marks the abandoned goroutine's context done
		// before Call returns, strictly before any retry can start.
		return nil, Timeout
	}
}

// ObserveSuccess folds one completed cycle into the state machine. empty
// marks cycles whose detector returned no detections — they feed the
// empty-burst detector but never advance recovery. The return value reports
// a transition back to Healthy (callers may restore their preferred model
// setting on it).
func (s *Supervisor) ObserveSuccess(empty bool, cycle, frame int, at time.Duration) (recovered bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if empty {
		if s.cfg.EmptyBurst > 0 {
			s.emptyStreak++
			if s.emptyStreak == s.cfg.EmptyBurst {
				s.stats.EmptyBursts++
				s.setHealth(Degraded)
				s.okStreak = 0
				s.event(ComponentDetector, "empty", "empty-burst", cycle, frame, at)
			}
		}
		return false
	}
	s.emptyStreak = 0
	s.failStreak = 0
	switch s.health {
	case Healthy:
	case Degraded:
		s.setHealth(Recovering)
		s.okStreak = 1
	case Recovering:
		s.okStreak++
		if s.okStreak >= s.cfg.RecoverAfter {
			s.setHealth(Healthy)
			s.stats.Recoveries++
			s.event(ComponentDetector, "", "recovered", cycle, frame, at)
			return true
		}
	}
	return false
}

// ObserveFault folds one hard fault (timeout or panic) into the state
// machine and returns the recommended reaction.
func (s *Supervisor) ObserveFault(component string, o Outcome, cycle, frame int, at time.Duration) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch o {
	case Timeout:
		s.stats.Timeouts++
		s.stats.Abandoned++
	case Panicked:
		s.stats.Panics++
	}
	s.setHealth(Degraded)
	s.okStreak = 0
	s.emptyStreak = 0
	s.failStreak++
	s.event(component, o.String(), o.String(), cycle, frame, at)

	backoff := s.cfg.BackoffBase
	for i := 1; i < s.failStreak && backoff < s.cfg.BackoffMax; i++ {
		backoff *= 2
	}
	if backoff > s.cfg.BackoffMax {
		backoff = s.cfg.BackoffMax
	}
	return Decision{
		Backoff:   backoff,
		Downgrade: s.failStreak%s.cfg.DowngradeAfter == 0,
	}
}

// NoteRetry records one in-cycle retry.
func (s *Supervisor) NoteRetry(cycle, frame int, at time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Retries++
	s.event(ComponentDetector, "", "retry", cycle, frame, at)
}

// NoteDowngrade records an applied model-setting escalation.
func (s *Supervisor) NoteDowngrade(cycle, frame int, at time.Duration, from, to string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Downgrades++
	s.event(ComponentDetector, from+"->"+to, "downgrade", cycle, frame, at)
}
