package guard

import (
	"context"
	"runtime"
	"testing"
	"time"

	"adavp/internal/core"
)

// TestCallGoroutineReleased asserts that supervised call goroutines are not
// leaked: a completed call's goroutine exits immediately, and an abandoned
// (timed-out) call's goroutine exits once the underlying work returns — the
// buffered result channel means it never blocks forever on send.
func TestCallGoroutineReleased(t *testing.T) {
	s := New(Config{})
	base := runtime.NumGoroutine()

	for i := 0; i < 8; i++ {
		s.Call(time.Second, func(context.Context) []core.Detection { return nil })
	}

	release := make(chan struct{})
	if _, o := s.Call(5*time.Millisecond, func(ctx context.Context) []core.Detection {
		<-release
		return nil
	}); o != Timeout {
		t.Fatalf("outcome = %v, want Timeout", o)
	}
	close(release) // let the zombie drain

	deadline := time.Now().Add(5 * time.Second)
	const tolerance = 2
	for runtime.NumGoroutine() > base+tolerance {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine count %d never returned to baseline %d (+%d)\n%s",
				runtime.NumGoroutine(), base, tolerance, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCallOutcomes(t *testing.T) {
	s := New(Config{})

	want := []core.Detection{{Class: core.ClassCar, Score: 1}}
	dets, o := s.Call(time.Second, func(context.Context) []core.Detection { return want })
	if o != OK || len(dets) != 1 {
		t.Fatalf("ok call: outcome %v, %d detections", o, len(dets))
	}

	dets, o = s.Call(time.Second, func(context.Context) []core.Detection { panic("boom") })
	if o != Panicked || dets != nil {
		t.Fatalf("panicking call: outcome %v, dets %v", o, dets)
	}

	release := make(chan struct{})
	defer close(release)
	abandonedCtx := make(chan context.Context, 1)
	dets, o = s.Call(10*time.Millisecond, func(ctx context.Context) []core.Detection {
		abandonedCtx <- ctx
		<-release
		return want
	})
	if o != Timeout || dets != nil {
		t.Fatalf("hung call: outcome %v, dets %v", o, dets)
	}
	// The abandoned call's context must already be cancelled when Call
	// returns Timeout — that ordering is what lets detectors drop pooled
	// state before any retry can draw from the pool.
	if err := (<-abandonedCtx).Err(); err == nil {
		t.Fatal("abandoned call's context not cancelled after Timeout")
	}
}

func TestStateMachine(t *testing.T) {
	s := New(Config{RecoverAfter: 3})
	if s.Health() != Healthy {
		t.Fatalf("initial health %v", s.Health())
	}

	dec := s.ObserveFault(ComponentDetector, Timeout, 0, 0, 0)
	if s.Health() != Degraded {
		t.Fatalf("after fault: %v", s.Health())
	}
	if dec.Backoff <= 0 {
		t.Fatalf("fault decision has no backoff: %+v", dec)
	}

	// First success moves Degraded → Recovering, not Healthy.
	if rec := s.ObserveSuccess(false, 1, 1, 0); rec {
		t.Fatal("recovered after one success with RecoverAfter=3")
	}
	if s.Health() != Recovering {
		t.Fatalf("after first success: %v", s.Health())
	}
	if rec := s.ObserveSuccess(false, 2, 2, 0); rec {
		t.Fatal("recovered after two successes")
	}
	if rec := s.ObserveSuccess(false, 3, 3, 0); !rec {
		t.Fatal("did not recover after three successes")
	}
	if s.Health() != Healthy {
		t.Fatalf("after recovery: %v", s.Health())
	}

	st := s.Stats()
	if st.Timeouts != 1 || st.Recoveries != 1 || st.Abandoned != 1 {
		t.Fatalf("stats = %+v", st)
	}
	evs := s.Events()
	if len(evs) != 2 || evs[0].Action != "timeout" || evs[1].Action != "recovered" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestFaultDuringRecoveryResetsStreak(t *testing.T) {
	s := New(Config{RecoverAfter: 2})
	s.ObserveFault(ComponentDetector, Panicked, 0, 0, 0)
	s.ObserveSuccess(false, 1, 1, 0) // Recovering, streak 1
	s.ObserveFault(ComponentDetector, Panicked, 2, 2, 0)
	if s.Health() != Degraded {
		t.Fatalf("fault during recovery: %v", s.Health())
	}
	s.ObserveSuccess(false, 3, 3, 0)
	if rec := s.ObserveSuccess(false, 4, 4, 0); !rec {
		t.Fatal("streak after second fault did not recover at RecoverAfter")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	s := New(Config{BackoffBase: 10 * time.Millisecond, BackoffMax: 35 * time.Millisecond})
	var prev time.Duration
	for i := 0; i < 6; i++ {
		dec := s.ObserveFault(ComponentDetector, Timeout, i, i, 0)
		if dec.Backoff < prev {
			t.Fatalf("fault %d: backoff shrank %v -> %v", i, prev, dec.Backoff)
		}
		if dec.Backoff > 35*time.Millisecond {
			t.Fatalf("fault %d: backoff %v exceeds cap", i, dec.Backoff)
		}
		prev = dec.Backoff
	}
	if prev != 35*time.Millisecond {
		t.Fatalf("backoff never reached cap: %v", prev)
	}
}

func TestDowngradeEveryN(t *testing.T) {
	s := New(Config{DowngradeAfter: 2})
	var downs []int
	for i := 1; i <= 6; i++ {
		if s.ObserveFault(ComponentDetector, Timeout, i, i, 0).Downgrade {
			downs = append(downs, i)
		}
	}
	if len(downs) != 3 || downs[0] != 2 || downs[1] != 4 || downs[2] != 6 {
		t.Fatalf("downgrades at faults %v, want [2 4 6]", downs)
	}
}

func TestEmptyBurst(t *testing.T) {
	s := New(Config{EmptyBurst: 3})
	for i := 0; i < 2; i++ {
		s.ObserveSuccess(true, i, i, 0)
	}
	if s.Health() != Healthy {
		t.Fatalf("short empty run degraded health: %v", s.Health())
	}
	s.ObserveSuccess(true, 2, 2, 0) // third consecutive empty
	if s.Health() != Degraded {
		t.Fatalf("empty burst did not degrade: %v", s.Health())
	}
	if st := s.Stats(); st.EmptyBursts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A longer run must not double-count the same burst.
	s.ObserveSuccess(true, 3, 3, 0)
	if st := s.Stats(); st.EmptyBursts != 1 {
		t.Fatalf("burst double-counted: %+v", st)
	}
	// A non-empty success resets the streak and starts recovery.
	s.ObserveSuccess(false, 4, 4, 0)
	if s.Health() != Recovering {
		t.Fatalf("after non-empty success: %v", s.Health())
	}
}

func TestEmptyBurstDisabled(t *testing.T) {
	s := New(Config{EmptyBurst: -1})
	for i := 0; i < 50; i++ {
		s.ObserveSuccess(true, i, i, 0)
	}
	if s.Health() != Healthy || s.Stats().EmptyBursts != 0 {
		t.Fatalf("disabled empty-burst still fired: %v %+v", s.Health(), s.Stats())
	}
}

func TestEmptyCyclesDoNotAdvanceRecovery(t *testing.T) {
	s := New(Config{RecoverAfter: 2, EmptyBurst: 100})
	s.ObserveFault(ComponentDetector, Timeout, 0, 0, 0)
	for i := 1; i <= 10; i++ {
		if rec := s.ObserveSuccess(true, i, i, 0); rec {
			t.Fatal("empty cycle reported recovery")
		}
	}
	if s.Health() != Degraded {
		t.Fatalf("empty cycles advanced health to %v", s.Health())
	}
}

func TestNotes(t *testing.T) {
	s := New(Config{})
	s.NoteRetry(1, 2, 0)
	s.NoteDowngrade(1, 2, 0, "512x512", "416x416")
	st := s.Stats()
	if st.Retries != 1 || st.Downgrades != 1 {
		t.Fatalf("stats = %+v", st)
	}
	evs := s.Events()
	if len(evs) != 2 || evs[0].Action != "retry" || evs[1].Action != "downgrade" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[1].Kind != "512x512->416x416" {
		t.Fatalf("downgrade kind = %q", evs[1].Kind)
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.WatchdogFactor != 8 || c.MinDeadline != 100*time.Millisecond ||
		c.EmptyBurst != 8 || c.RecoverAfter != 3 || c.MaxRetries != 2 ||
		c.DowngradeAfter != 2 || c.BackoffBase != 5*time.Millisecond ||
		c.BackoffMax != 250*time.Millisecond {
		t.Fatalf("defaults = %+v", c)
	}
	if c := (Config{MaxRetries: -5}).WithDefaults(); c.MaxRetries != 0 {
		t.Fatalf("negative MaxRetries not clamped: %d", c.MaxRetries)
	}
}
