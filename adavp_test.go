package adavp

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestGenerateVideoDeterministic(t *testing.T) {
	a := GenerateVideo(ScenarioHighway, 7, 60)
	b := GenerateVideo(ScenarioHighway, 7, 60)
	if a.NumFrames() != 60 || b.NumFrames() != 60 {
		t.Fatal("wrong length")
	}
	for i := 0; i < 60; i++ {
		ta, tb := a.Truth(i), b.Truth(i)
		if len(ta) != len(tb) {
			t.Fatal("non-deterministic video")
		}
	}
}

func TestRunDefaultsToAdaVP(t *testing.T) {
	v := GenerateVideo(ScenarioHighway, 1, 300)
	res, err := Run(v, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Policy != "AdaVP" {
		t.Errorf("default policy = %s", res.Trace.Policy)
	}
	if len(res.FrameF1) != 300 || len(res.Outputs) != 300 {
		t.Error("missing per-frame results")
	}
	if res.Accuracy <= 0 || res.Accuracy > 1 {
		t.Errorf("accuracy = %f", res.Accuracy)
	}
}

func TestRunAllPolicies(t *testing.T) {
	v := GenerateVideo(ScenarioCityStreet, 2, 200)
	for _, p := range []Policy{PolicyAdaVP, PolicyMPDT, PolicyMARLIN, PolicyNoTracking, PolicyContinuous} {
		res, err := Run(v, Options{Policy: p, Setting: Setting512, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.MeanF1 < 0 || res.MeanF1 > 1 {
			t.Fatalf("%v: mean F1 %f", p, res.MeanF1)
		}
	}
}

func TestEnergyFromRun(t *testing.T) {
	v := GenerateVideo(ScenarioHighway, 3, 300)
	res, err := Run(v, Options{Policy: PolicyMPDT, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := Energy(res)
	if e.Total() <= 0 {
		t.Errorf("energy total %f", e.Total())
	}
	if Energy(nil).Total() != 0 {
		t.Error("nil result should yield zero energy")
	}
}

func TestRunLive(t *testing.T) {
	v := GenerateVideo(ScenarioHighway, 4, 200)
	res, err := RunLive(context.Background(), v, Options{Seed: 4}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 200 {
		t.Errorf("%d outputs", len(res.Outputs))
	}
	if _, err := RunLive(context.Background(), v, Options{Policy: PolicyMARLIN}, 0.01); err == nil {
		t.Error("MARLIN live should be rejected")
	}
}

func TestRunPixelMode(t *testing.T) {
	if testing.Short() {
		t.Skip("pixel mode is slow")
	}
	v := GenerateVideo(ScenarioHighway, 5, 90)
	res, err := Run(v, Options{Policy: PolicyMPDT, Setting: Setting512, Seed: 5, PixelMode: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanF1 <= 0.05 {
		t.Errorf("pixel-mode F1 %f: end-to-end pixel pipeline broken", res.MeanF1)
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	var buf bytes.Buffer
	scale := ExperimentScale{FramesPerVideo: 120, TrialFrames: 100, Seed: 3}
	if err := RunExperiment("fig1", scale, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 1") {
		t.Error("fig1 report missing header")
	}
	if err := RunExperiment("nope", scale, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentIDs()) != 13 {
		t.Errorf("%d experiment ids, want 13", len(ExperimentIDs()))
	}
}

func TestVideoDuration(t *testing.T) {
	v := GenerateVideo(ScenarioBoat, 6, 300)
	if got := VideoDuration(v).Seconds(); got < 9.99 || got > 10.01 {
		t.Errorf("duration = %.4fs, want ~10s", got)
	}
}

func TestDefaultAdaptationModelUsable(t *testing.T) {
	m := DefaultAdaptationModel()
	if m.Next(Setting512, 0.05) != Setting608 {
		t.Error("slow content should pick the largest model")
	}
	if m.Next(Setting512, 500) != Setting320 {
		t.Error("very fast content should pick the smallest model")
	}
}
