package adavp

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (see DESIGN.md §3), plus ablation benches for the design choices the
// paper motivates. Each benchmark regenerates its experiment at a reduced
// scale and reports the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full harness and prints the reproduced numbers. For
// paper-magnitude runs use cmd/adavp-experiments -paper-scale.

import (
	"testing"

	"adavp/internal/core"
	"adavp/internal/energy"
	"adavp/internal/experiments"
	"adavp/internal/sim"
	"adavp/internal/video"
)

// benchScale keeps every benchmark iteration under a second.
func benchScale() experiments.Scale {
	return experiments.Scale{FramesPerVideo: 240, TrialFrames: 200, Seed: 2}
}

func BenchmarkFig1DetectionLatencyAccuracy(b *testing.B) {
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig1(benchScale())
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.F1, "F1@"+row.Setting.String())
	}
}

func BenchmarkFig2TrackingDecay(b *testing.B) {
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig2(benchScale())
	}
	b.ReportMetric(float64(last.FastBelow), "fast-frames-to-0.5")
	b.ReportMetric(float64(last.SlowBelow), "slow-frames-to-0.5")
}

func BenchmarkTable2ComponentLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table2(benchScale())
	}
}

func BenchmarkFig5MPDTSettings(b *testing.B) {
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig5(benchScale())
	}
	b.ReportMetric(float64(last.Crossovers), "lead-changes")
}

func BenchmarkFig6OverallAccuracy(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AdaVP, "AdaVP-accuracy")
	b.ReportMetric(last.MPDT[core.Setting512], "MPDT512-accuracy")
	b.ReportMetric(last.MARLIN[core.Setting512], "MARLIN512-accuracy")
}

func BenchmarkFig7SwitchCDF(b *testing.B) {
	var last *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.PAt1, "P(switch<=1cycle)")
	b.ReportMetric(last.PAt20, "P(switch<=20cycles)")
}

func BenchmarkFig8SettingUsage(b *testing.B) {
	var last *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Usage[core.Setting512]+last.Usage[core.Setting608], "usage-512+608")
}

func BenchmarkFig9FrameAccuracy(b *testing.B) {
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MeanAdaVP, "AdaVP-meanF1")
	b.ReportMetric(last.MeanMPDT, "MPDT512-meanF1")
}

func BenchmarkFig10F1Threshold(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AdaVP, "AdaVP-accuracy@0.75")
}

func BenchmarkFig11IoUThreshold(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AdaVP, "AdaVP-accuracy@IoU0.6")
}

func BenchmarkTable3Energy(b *testing.B) {
	var last *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		if row.Name == "AdaVP" || row.Name == "MPDT-YOLOv3-512" {
			b.ReportMetric(row.Energy.Total(), "Wh-"+row.Name)
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// benchVideos is a small mixed set reused by the ablations.
func benchVideos() []*video.Video {
	return video.TestSet(3, 240)
}

// BenchmarkAblationFrameSelection compares the paper's tracking-frame
// selection (p = h/f, frames spread across the buffer) against naively
// tracking every frame until the cycle budget dies (later frames never
// tracked).
func BenchmarkAblationFrameSelection(b *testing.B) {
	videos := benchVideos()
	var with, without float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunSet(videos, sim.Config{Policy: sim.PolicyMPDT, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunSet(videos, sim.Config{Policy: sim.PolicyMPDT, Seed: 1, TrackAllFrames: true})
		if err != nil {
			b.Fatal(err)
		}
		with, without = r1.MeanAccuracy, r2.MeanAccuracy
	}
	b.ReportMetric(with, "acc-with-selection")
	b.ReportMetric(without, "acc-track-all")
}

// BenchmarkAblationVelocitySmoothing compares AdaVP's smoothed adaptation
// input against raw per-cycle velocities.
func BenchmarkAblationVelocitySmoothing(b *testing.B) {
	videos := benchVideos()
	var smoothed, raw float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunSet(videos, sim.Config{Policy: sim.PolicyAdaVP, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunSet(videos, sim.Config{Policy: sim.PolicyAdaVP, Seed: 1, NoVelocitySmoothing: true})
		if err != nil {
			b.Fatal(err)
		}
		smoothed, raw = r1.MeanAccuracy, r2.MeanAccuracy
	}
	b.ReportMetric(smoothed, "acc-smoothed")
	b.ReportMetric(raw, "acc-raw")
}

// BenchmarkAblationPerSizeThresholds compares the paper's per-current-setting
// threshold triples (§IV-D.3) against a single global triple.
func BenchmarkAblationPerSizeThresholds(b *testing.B) {
	videos := benchVideos()
	perSize := DefaultAdaptationModel()
	// The global model applies the 512 triple regardless of the setting the
	// velocity was measured under.
	globalModel := DefaultAdaptationModel()
	tri := globalModel.PerSetting[core.Setting512]
	for _, s := range core.AdaptiveSettings {
		globalModel.PerSetting[s] = tri
	}
	var perAcc, globalAcc float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunSet(videos, sim.Config{Policy: sim.PolicyAdaVP, Adaptation: perSize, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunSet(videos, sim.Config{Policy: sim.PolicyAdaVP, Adaptation: globalModel, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		perAcc, globalAcc = r1.MeanAccuracy, r2.MeanAccuracy
	}
	b.ReportMetric(perAcc, "acc-per-size")
	b.ReportMetric(globalAcc, "acc-global")
}

// BenchmarkAblationParallelVsSequential is the MPDT-vs-MARLIN schedule
// ablation: identical detector, tracker and change signal; only the
// schedule differs.
func BenchmarkAblationParallelVsSequential(b *testing.B) {
	videos := benchVideos()
	var parallel, sequential float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunSet(videos, sim.Config{Policy: sim.PolicyMPDT, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunSet(videos, sim.Config{Policy: sim.PolicyMARLIN, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		parallel, sequential = r1.MeanAccuracy, r2.MeanAccuracy
	}
	b.ReportMetric(parallel, "acc-parallel")
	b.ReportMetric(sequential, "acc-sequential")
}

// BenchmarkEndToEndAdaVP measures raw simulator throughput (frames/sec of
// simulated video per wall second).
func BenchmarkEndToEndAdaVP(b *testing.B) {
	v := video.GenerateKind("bench", video.KindHighway, 1, 900)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(v, sim.Config{Policy: sim.PolicyAdaVP, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(900*b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkEnergyIntegration measures the Table III energy path.
func BenchmarkEnergyIntegration(b *testing.B) {
	v := video.GenerateKind("bench", video.KindHighway, 1, 900)
	r, err := sim.Run(v, sim.Config{Policy: sim.PolicyAdaVP, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := energy.DefaultModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Energy(r.Run)
	}
}
